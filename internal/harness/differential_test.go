package harness

import (
	"testing"

	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

// Differential tests: every algorithm must behave identically at the
// specification level — same completions, non-overlapping CS intervals,
// deterministic replay — under identical workloads.

// TestAllAlgorithmsNonOverlappingSchedules replays one workload through
// every algorithm and verifies the CS intervals never overlap (a stronger,
// record-level check than the online monitor) and that everyone completes.
func TestAllAlgorithmsNonOverlappingSchedules(t *testing.T) {
	const (
		n       = 9
		perSite = 6
	)
	for _, e := range Algorithms() {
		e := e
		t.Run(e.Algorithm.Name(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				c, err := sim.NewCluster(sim.Config{
					N: n, Algorithm: e.Algorithm, Delay: sim.ExponentialDelay{MeanD: DefaultDelay},
					Seed: seed, CSTime: 50,
				})
				if err != nil {
					t.Fatal(err)
				}
				workload.Saturated(c, perSite)
				c.Run(0)
				if err := c.Err(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				recs := c.Records()
				if len(recs) != n*perSite {
					t.Fatalf("seed %d: %d records, want %d", seed, len(recs), n*perSite)
				}
				for i := 1; i < len(recs); i++ {
					if recs[i].Entered < recs[i-1].Exited {
						t.Fatalf("seed %d: CS overlap: %+v then %+v", seed, recs[i-1], recs[i])
					}
				}
			}
		})
	}
}

// TestDeterministicReplay: identical seeds must give bit-identical metrics
// for every algorithm — the property that makes the evaluation reproducible.
func TestDeterministicReplay(t *testing.T) {
	for _, e := range Algorithms() {
		run := func() sim.Result {
			res, err := Run(Spec{
				N: 9, Algorithm: e.Algorithm, Load: Heavy, PerSite: 4, Seed: 77,
				Delay: sim.ExponentialDelay{MeanD: DefaultDelay},
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.TotalMessages != b.TotalMessages || a.SyncDelay != b.SyncDelay ||
			a.Throughput != b.Throughput || a.ResponseTime != b.ResponseTime {
			t.Errorf("%s: replay diverged: %+v vs %+v", e.Algorithm.Name(), a, b)
		}
	}
}

// TestFairnessNoSiteStarves: across a long saturated run, every site
// completes its full quota for every algorithm (per-site fairness, the
// Theorem 3 property).
func TestFairnessNoSiteStarves(t *testing.T) {
	const (
		n       = 9
		perSite = 10
	)
	for _, e := range Algorithms() {
		c, err := sim.NewCluster(sim.Config{
			N: n, Algorithm: e.Algorithm, Delay: sim.ExponentialDelay{MeanD: DefaultDelay},
			Seed: 13, CSTime: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		workload.Saturated(c, perSite)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("%s: %v", e.Algorithm.Name(), err)
		}
		counts := make(map[int]int, n)
		for _, r := range c.Records() {
			counts[int(r.Site)]++
		}
		for i := 0; i < n; i++ {
			if counts[i] != perSite {
				t.Errorf("%s: site %d completed %d of %d", e.Algorithm.Name(), i, counts[i], perSite)
			}
		}
	}
}
