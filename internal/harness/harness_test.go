package harness

import (
	"strings"
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/sim"
)

func TestRunValidations(t *testing.T) {
	if _, err := Run(Spec{N: 4, Algorithm: core.Algorithm{}, Load: LoadKind(99), PerSite: 1}); err == nil {
		t.Error("accepted unknown load kind")
	}
	if _, err := Run(Spec{N: 0, Algorithm: core.Algorithm{}, Load: Light, PerSite: 1}); err == nil {
		t.Error("accepted N=0")
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	n := 25
	rows, err := Table1(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	get := func(name string) Table1Row {
		for _, r := range rows {
			if strings.HasPrefix(r.Algorithm, name) {
				return r
			}
		}
		t.Fatalf("algorithm %q missing", name)
		return Table1Row{}
	}
	lam, ra := get("lamport"), get("ricart-agrawala")
	mk, ours := get("maekawa"), get("delay-optimal")
	sk := get("suzuki-kasami")

	// Exact classical light-load counts.
	if lam.LightMsgs != float64(3*(n-1)) {
		t.Errorf("lamport light = %v, want %d", lam.LightMsgs, 3*(n-1))
	}
	if ra.LightMsgs != float64(2*(n-1)) {
		t.Errorf("ricart-agrawala light = %v, want %d", ra.LightMsgs, 2*(n-1))
	}
	// Quorum algorithms beat permission-broadcast algorithms on messages.
	if ours.HeavyMsgs >= lam.HeavyMsgs {
		t.Errorf("proposed heavy msgs %v should beat lamport %v", ours.HeavyMsgs, lam.HeavyMsgs)
	}
	// The headline: proposed ≈ T, Maekawa ≈ 2T.
	if !(ours.SyncDelayT < 1.5 && mk.SyncDelayT > 1.8) {
		t.Errorf("sync delays: proposed %v (want <1.5), maekawa %v (want >1.8)", ours.SyncDelayT, mk.SyncDelayT)
	}
	// Token algorithms keep delay T too.
	if sk.SyncDelayT > 1.3 {
		t.Errorf("suzuki-kasami sync delay %v, want ≈1", sk.SyncDelayT)
	}
}

func TestLightLoadMatchesFormula(t *testing.T) {
	rows, err := LightLoad([]int{9, 16, 25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MsgsPerCS != r.ExpectedMsgs {
			t.Errorf("N=%d: msgs %v != 3(K-1) = %v", r.N, r.MsgsPerCS, r.ExpectedMsgs)
		}
		if r.ResponseT != r.ExpectedResp {
			t.Errorf("N=%d: response %v != %v", r.N, r.ResponseT, r.ExpectedResp)
		}
	}
}

func TestHeavyLoadWithinBand(t *testing.T) {
	rows, err := HeavyLoad([]int{9, 25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MsgsPerCS < 3*float64(r.K-1) || r.MsgsPerCS > r.High+0.5 {
			t.Errorf("N=%d: %v msgs/CS outside [3(K-1), 6(K-1)=%v]", r.N, r.MsgsPerCS, r.High)
		}
	}
}

func TestSyncDelayRatioNearTwo(t *testing.T) {
	rows, err := SyncDelay([]int{25}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Ratio < 1.4 || r.Ratio > 2.5 {
		t.Errorf("maekawa/proposed delay ratio = %v, want ≈2", r.Ratio)
	}
}

func TestThroughputNearlyDoubled(t *testing.T) {
	rows, err := Throughput(25, []sim.Time{10}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TputRatio < 1.4 {
		t.Errorf("throughput ratio = %v, want ≥1.4 (paper: ≈2)", r.TputRatio)
	}
	if r.WaitRatio > 0.75 {
		t.Errorf("waiting ratio = %v, want ≤0.75 (paper: ≈0.5)", r.WaitRatio)
	}
}

func TestQuorumSizesGrowth(t *testing.T) {
	rows, err := QuorumSizes([]int{49, 255})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[int]QuorumSizeRow{}
	for _, r := range rows {
		if byName[r.Construction] == nil {
			byName[r.Construction] = map[int]QuorumSizeRow{}
		}
		byName[r.Construction][r.N] = r
	}
	// Tree quorums are the smallest at large N; majority the largest.
	tree, grid, maj := byName["ae-tree"][255], byName["maekawa-grid"][255], byName["majority"][255]
	if !(tree.Avg < grid.Avg && grid.Avg < maj.Avg) {
		t.Errorf("expected tree < grid < majority at N=255: %v %v %v", tree.Avg, grid.Avg, maj.Avg)
	}
	// Tree path length is ⌈log2(N+1)⌉ on perfect trees.
	if tree.Max != 8 {
		t.Errorf("tree max K at N=255 = %d, want 8", tree.Max)
	}
	// Grid K is 2√N−1 on perfect squares.
	if byName["maekawa-grid"][49].Max != 13 {
		t.Errorf("grid max K at N=49 = %d, want 13", byName["maekawa-grid"][49].Max)
	}
}

func TestAvailabilityOrdering(t *testing.T) {
	rows := Availability(15, []float64{0.9}, 5000, 11)
	av := map[string]float64{}
	for _, r := range rows {
		av[r.Construction] = r.Availability
	}
	if av["majority"] <= av["singleton"] {
		t.Errorf("majority (%v) should beat singleton (%v) at p=0.9", av["majority"], av["singleton"])
	}
	if av["ae-tree"] <= av["singleton"] {
		t.Errorf("tree (%v) should beat singleton (%v) at p=0.9", av["ae-tree"], av["singleton"])
	}
}

func TestCrashRecoveryProgress(t *testing.T) {
	row, err := CrashRecovery(15, 3, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.FailureMsgs == 0 {
		t.Error("no failure notifications recorded")
	}
	// Crashed sites cannot finish their remaining executions, so completed
	// may fall short of the target, but survivors must have progressed well
	// past the pre-crash phase.
	if row.Completed < row.Expected-2*3 {
		t.Errorf("completed %d of %d", row.Completed, row.Expected)
	}
}

func TestLoadSweepMonotoneWaiting(t *testing.T) {
	rows, err := LoadSweep(16, []sim.Time{100, 10000, 200000}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !(rows[0].WaitingT > rows[2].WaitingT) {
		t.Errorf("waiting should shrink with think time: %v vs %v", rows[0].WaitingT, rows[2].WaitingT)
	}
}

func TestDelaySensitivityShapeStable(t *testing.T) {
	rows, err := DelaySensitivity(25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 1.3 {
			t.Errorf("%s: maekawa/proposed ratio %v, want ≥1.3 (shape must survive jitter)",
				r.Distribution, r.Ratio)
		}
		if r.Proposed >= r.Maekawa {
			t.Errorf("%s: proposed (%v) not faster than maekawa (%v)",
				r.Distribution, r.Proposed, r.Maekawa)
		}
	}
}

func TestScalabilityShapes(t *testing.T) {
	rows, err := Scalability([]int{25, 169}, 2)
	if err != nil {
		t.Fatal(err)
	}
	find := func(cons string, n int) ScalabilityRow {
		for _, r := range rows {
			if r.Construction == cons && r.N == n {
				return r
			}
		}
		t.Fatalf("row %s/%d missing", cons, n)
		return ScalabilityRow{}
	}
	// Grid messages grow ~√N (×2.6 from N=25→169); tree ~log N (×~1.6).
	g25, g169 := find("maekawa-grid", 25), find("maekawa-grid", 169)
	t25, t169 := find("ae-tree", 25), find("ae-tree", 169)
	gridGrowth := g169.MsgsPerCS / g25.MsgsPerCS
	treeGrowth := t169.MsgsPerCS / t25.MsgsPerCS
	if !(gridGrowth > 2.4 && gridGrowth < 3.6) {
		t.Errorf("grid message growth ×%.2f, want ≈ √(169/25) ≈ 2.6", gridGrowth)
	}
	if treeGrowth > 2.0 {
		t.Errorf("tree message growth ×%.2f, want sub-logarithmic ≲ 2", treeGrowth)
	}
	// Sync delay stays near T at every size.
	for _, r := range rows {
		if r.SyncDelay > 1.6 {
			t.Errorf("%s N=%d: sync delay %.2f T drifted from ≈T", r.Construction, r.N, r.SyncDelay)
		}
	}
}

func TestLinkFailuresComplete(t *testing.T) {
	row, err := LinkFailures(15, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if row.Completed != row.Expected {
		t.Errorf("completed %d of %d despite link cuts", row.Completed, row.Expected)
	}
}

func TestQuorumIndependenceAllConstructions(t *testing.T) {
	rows, err := QuorumIndependence(13, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 constructions", len(rows))
	}
	for _, r := range rows {
		if r.MsgsPerCS <= 0 && r.Construction != "singleton" {
			t.Errorf("%s: no messages measured", r.Construction)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var b strings.Builder
	t1, err := Table1(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTable1(t1, 9, &b); err != nil {
		t.Fatal(err)
	}
	ll, err := LightLoad([]int{9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderLightLoad(ll, &b); err != nil {
		t.Fatal(err)
	}
	hl, err := HeavyLoad([]int{9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderHeavyLoad(hl, &b); err != nil {
		t.Fatal(err)
	}
	sd, err := SyncDelay([]int{9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderSyncDelay(sd, &b); err != nil {
		t.Fatal(err)
	}
	tp, err := Throughput(9, []sim.Time{10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderThroughput(tp, 9, &b); err != nil {
		t.Fatal(err)
	}
	qs, err := QuorumSizes([]int{9})
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderQuorumSizes(qs, &b); err != nil {
		t.Fatal(err)
	}
	if err := RenderAvailability(Availability(9, []float64{0.9}, 100, 1), &b); err != nil {
		t.Fatal(err)
	}
	cr, err := CrashRecovery(15, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderCrashRecovery([]CrashRecoveryRow{cr}, &b); err != nil {
		t.Fatal(err)
	}
	ls, err := LoadSweep(9, []sim.Time{1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderLoadSweep(ls, 9, &b); err != nil {
		t.Fatal(err)
	}
	qi, err := QuorumIndependence(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderQuorumIndependence(qi, 9, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
