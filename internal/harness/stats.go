package harness

import (
	"fmt"
	"io"
	"math"

	"dqmx/internal/metrics"
	"dqmx/internal/sim"
)

// Aggregate holds the cross-seed statistics of one metric.
type Aggregate struct {
	Mean float64
	Std  float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (normal approximation).
	CI95 float64
	Runs int
}

func aggregate(xs []float64) Aggregate {
	var s metrics.Summary
	for _, x := range xs {
		s.Add(x)
	}
	a := Aggregate{Mean: s.Mean(), Std: s.Std(), Runs: s.N()}
	if s.N() > 1 {
		a.CI95 = 1.96 * s.Std() / math.Sqrt(float64(s.N()))
	}
	return a
}

// String renders "mean ± ci".
func (a Aggregate) String() string {
	return fmt.Sprintf("%.3f ± %.3f", a.Mean, a.CI95)
}

// MultiSeedRow carries cross-seed aggregates of the headline metrics for one
// algorithm.
type MultiSeedRow struct {
	Algorithm  string
	MsgsPerCS  Aggregate
	SyncDelayT Aggregate
	Throughput Aggregate
}

// RunMany executes the heavy-load comparison across `seeds` independent
// seeds per algorithm under exponentially distributed delays (constant
// delays are seed-independent) and reports mean ± 95% CI for each headline
// metric — the statistically robust version of Table 1's measured columns.
func RunMany(n, perSite, seeds int) ([]MultiSeedRow, error) {
	rows := make([]MultiSeedRow, 0, 8)
	for _, e := range Algorithms() {
		var msgs, sync, tput []float64
		for seed := int64(1); seed <= int64(seeds); seed++ {
			res, err := Run(Spec{
				N: n, Algorithm: e.Algorithm, Load: Heavy, PerSite: perSite, Seed: seed,
				Delay: sim.ExponentialDelay{MeanD: DefaultDelay},
			})
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", e.Algorithm.Name(), seed, err)
			}
			msgs = append(msgs, res.MessagesPerCS)
			sync = append(sync, res.SyncDelay)
			tput = append(tput, res.Throughput)
		}
		rows = append(rows, MultiSeedRow{
			Algorithm:  e.Algorithm.Name(),
			MsgsPerCS:  aggregate(msgs),
			SyncDelayT: aggregate(sync),
			Throughput: aggregate(tput),
		})
	}
	return rows, nil
}

// RenderMultiSeed writes the cross-seed table.
func RenderMultiSeed(rows []MultiSeedRow, n, seeds int, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table 1 (multi-seed): mean ± 95%% CI over %d seeds (N=%d, heavy load)\n", seeds, n); err != nil {
		return err
	}
	tab := metrics.NewTable("algorithm", "msgs/CS", "sync delay (T)", "throughput (CS/T)")
	for _, r := range rows {
		tab.AddRow(r.Algorithm, r.MsgsPerCS.String(), r.SyncDelayT.String(), r.Throughput.String())
	}
	return tab.Render(w)
}
