package ricartagrawala_test

import (
	"testing"

	"dqmx/internal/ricartagrawala"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

const meanDelay = sim.Time(1000)

func runSaturated(t *testing.T, n, perSite int, seed int64, delay sim.Delay) sim.Result {
	t.Helper()
	if delay == nil {
		delay = sim.ConstantDelay{D: meanDelay}
	}
	c, err := sim.NewCluster(sim.Config{N: n, Algorithm: ricartagrawala.Algorithm{}, Delay: delay, Seed: seed, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	workload.Saturated(c, perSite)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatalf("n=%d seed=%d: %v", n, seed, err)
	}
	if got, want := c.Completed(), n*perSite; got != want {
		t.Fatalf("completed %d of %d", got, want)
	}
	return c.Summarize()
}

func TestSafetyAndLiveness(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		for seed := int64(1); seed <= 5; seed++ {
			runSaturated(t, n, 4, seed, nil)
			runSaturated(t, n, 4, seed, sim.ExponentialDelay{MeanD: meanDelay})
		}
	}
}

// TestMessagesAre2N1: exactly 2(N−1) messages per CS execution — the
// deferred replies replace releases.
func TestMessagesAre2N1(t *testing.T) {
	n := 9
	res := runSaturated(t, n, 5, 2, nil)
	want := float64(2 * (n - 1))
	if res.MessagesPerCS != want {
		t.Errorf("messages/CS = %v, want exactly %v", res.MessagesPerCS, want)
	}
}

// TestSyncDelayIsT: a deferred reply flies straight to the next site.
func TestSyncDelayIsT(t *testing.T) {
	res := runSaturated(t, 9, 10, 7, nil)
	if res.SyncDelaySamples == 0 {
		t.Fatal("no handover samples")
	}
	if res.SyncDelay < 0.9 || res.SyncDelay > 1.2 {
		t.Errorf("sync delay = %.3f T, want ≈ 1 T", res.SyncDelay)
	}
}

// TestDeferredReplyPriority: of two concurrent requesters the one with the
// smaller timestamp must win first.
func TestDeferredReplyPriority(t *testing.T) {
	c, err := sim.NewCluster(sim.Config{N: 2, Algorithm: ricartagrawala.Algorithm{}, Delay: sim.ConstantDelay{D: meanDelay}, CSTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.RequestAt(0, 1) // same tick: site 1 and site 0 both stamp (1, ·)
	c.RequestAt(0, 0) // site 0 has the smaller site id → higher priority
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Site != 0 {
		t.Errorf("site %d entered first, want site 0 (higher priority)", recs[0].Site)
	}
}
