package ricartagrawala

import (
	"testing"

	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// White-box handler tests for the deferred-reply machinery.

func newSites(t *testing.T, n int) []mutex.Site {
	t.Helper()
	sites, err := Algorithm{}.NewSites(n)
	if err != nil {
		t.Fatal(err)
	}
	return sites
}

func TestIdleSiteRepliesImmediately(t *testing.T) {
	sites := newSites(t, 2)
	s := sites[0].(*Site)
	out := s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{TS: timestamp.Timestamp{Seq: 1, Site: 1}}})
	if len(out.Send) != 1 || out.Send[0].Msg.Kind() != mutex.KindReply {
		t.Fatalf("idle site did not reply: %v", out.Send)
	}
	if len(s.deferred) != 0 {
		t.Fatal("idle site deferred")
	}
}

func TestInCSDefersUntilExit(t *testing.T) {
	sites := newSites(t, 2)
	s := sites[0].(*Site)
	s.Request()
	s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: replyMsg{Req: s.reqTS}})
	if !s.InCS() {
		t.Fatal("setup: not in CS")
	}
	out := s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{TS: timestamp.Timestamp{Seq: 5, Site: 1}}})
	if len(out.Send) != 0 {
		t.Fatalf("replied while in CS: %v", out.Send)
	}
	out = s.Exit()
	if len(out.Send) != 1 || out.Send[0].To != 1 || out.Send[0].Msg.Kind() != mutex.KindReply {
		t.Fatalf("deferred reply not flushed at exit: %v", out.Send)
	}
}

func TestWaitingHigherPriorityDefers(t *testing.T) {
	sites := newSites(t, 3)
	s := sites[0].(*Site)
	s.Request() // ts = (1, 0): beats (1, 1) by site id
	out := s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: requestMsg{TS: timestamp.Timestamp{Seq: 1, Site: 1}}})
	if len(out.Send) != 0 {
		t.Fatalf("higher-priority waiter replied: %v", out.Send)
	}
	if len(s.deferred) != 1 {
		t.Fatal("request not deferred")
	}
}

func TestWaitingLowerPriorityRepliesImmediately(t *testing.T) {
	sites := newSites(t, 3)
	s := sites[2].(*Site)
	s.Request() // ts = (1, 2)
	out := s.Deliver(mutex.Envelope{From: 1, To: 2, Msg: requestMsg{TS: timestamp.Timestamp{Seq: 1, Site: 1}}})
	if len(out.Send) != 1 || out.Send[0].Msg.Kind() != mutex.KindReply {
		t.Fatalf("lower-priority waiter must grant: %v", out.Send)
	}
}

func TestStaleReplyIgnored(t *testing.T) {
	sites := newSites(t, 2)
	s := sites[0].(*Site)
	s.Request()
	out := s.Deliver(mutex.Envelope{From: 1, To: 0, Msg: replyMsg{Req: timestamp.Timestamp{Seq: 77, Site: 0}}})
	if out.Entered {
		t.Fatal("entered on a stale reply")
	}
}
