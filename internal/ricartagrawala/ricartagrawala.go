// Package ricartagrawala implements the Ricart–Agrawala optimization of
// Lamport's algorithm: release messages are merged into deferred replies. A
// site replies to a request immediately unless it is inside the CS or has an
// outstanding higher-priority request of its own, in which case the reply is
// deferred until it exits. 2(N−1) messages per CS execution,
// synchronization delay T.
package ricartagrawala

import (
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
)

// requestMsg broadcasts a CS request.
type requestMsg struct{ TS timestamp.Timestamp }

// Kind implements mutex.Message.
func (requestMsg) Kind() string { return mutex.KindRequest }

// replyMsg grants permission for request Req.
type replyMsg struct{ Req timestamp.Timestamp }

// Kind implements mutex.Message.
func (replyMsg) Kind() string { return mutex.KindReply }

type siteState int

const (
	stateIdle siteState = iota + 1
	stateWaiting
	stateInCS
)

// Site is one Ricart–Agrawala participant.
type Site struct {
	id    mutex.SiteID
	n     int
	clock *timestamp.Clock

	state    siteState
	reqTS    timestamp.Timestamp
	replies  map[mutex.SiteID]bool
	deferred []timestamp.Timestamp // requests to answer at exit
}

var _ mutex.Site = (*Site)(nil)

// ID implements mutex.Site.
func (s *Site) ID() mutex.SiteID { return s.id }

// InCS implements mutex.Site.
func (s *Site) InCS() bool { return s.state == stateInCS }

// Pending implements mutex.Site.
func (s *Site) Pending() bool { return s.state == stateWaiting }

// Request implements mutex.Site.
func (s *Site) Request() mutex.Output {
	var out mutex.Output
	if s.state != stateIdle {
		return out
	}
	s.state = stateWaiting
	s.reqTS = s.clock.Tick()
	s.replies = make(map[mutex.SiteID]bool, s.n)
	for j := 0; j < s.n; j++ {
		if sid := mutex.SiteID(j); sid != s.id {
			out.SendTo(s.id, sid, requestMsg{TS: s.reqTS})
		}
	}
	s.checkEntry(&out)
	return out
}

// Exit implements mutex.Site: the deferred replies double as releases.
func (s *Site) Exit() mutex.Output {
	var out mutex.Output
	if s.state != stateInCS {
		return out
	}
	for _, req := range s.deferred {
		out.SendTo(s.id, req.Site, replyMsg{Req: req})
	}
	s.deferred = nil
	s.state = stateIdle
	s.reqTS = timestamp.Max
	s.replies = nil
	return out
}

// Deliver implements mutex.Site.
func (s *Site) Deliver(env mutex.Envelope) mutex.Output {
	var out mutex.Output
	switch m := env.Msg.(type) {
	case requestMsg:
		s.clock.Witness(m.TS)
		// Defer when we are in the CS, or waiting with a higher-priority
		// request of our own.
		if s.state == stateInCS || (s.state == stateWaiting && s.reqTS.Less(m.TS)) {
			s.deferred = append(s.deferred, m.TS)
		} else {
			out.SendTo(s.id, m.TS.Site, replyMsg{Req: m.TS})
		}
	case replyMsg:
		if s.state == stateWaiting && m.Req == s.reqTS {
			s.replies[env.From] = true
			s.checkEntry(&out)
		}
	}
	return out
}

func (s *Site) checkEntry(out *mutex.Output) {
	if s.state != stateWaiting || len(s.replies) < s.n-1 {
		return
	}
	s.state = stateInCS
	out.Entered = true
}

// Algorithm builds Ricart–Agrawala sites.
type Algorithm struct{}

var _ mutex.Algorithm = Algorithm{}

// Name implements mutex.Algorithm.
func (Algorithm) Name() string { return "ricart-agrawala" }

// NewSites implements mutex.Algorithm.
func (Algorithm) NewSites(n int) ([]mutex.Site, error) {
	sites := make([]mutex.Site, n)
	for i := 0; i < n; i++ {
		sites[i] = &Site{
			id:    mutex.SiteID(i),
			n:     n,
			clock: timestamp.NewClock(mutex.SiteID(i)),
			state: stateIdle,
			reqTS: timestamp.Max,
		}
	}
	return sites, nil
}
