package ricartagrawala

import (
	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// Binary wire registration (tags 20–21 in internal/wire's tag space).
const (
	tagRequest byte = iota + 20
	tagReply
)

func init() {
	wire.RegisterMessage(tagRequest, requestMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(requestMsg).TS)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return requestMsg{TS: r.Timestamp()}, nil
		})

	wire.RegisterMessage(tagReply, replyMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendTimestamp(b, m.(replyMsg).Req)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return replyMsg{Req: r.Timestamp()}, nil
		})
}
