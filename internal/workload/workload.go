// Package workload provides the critical-section request generators used by
// the paper's experiments: sequential (light load, no contention), saturated
// closed-loop (heavy load), and Poisson closed-loop (the light→heavy sweep).
package workload

import (
	"math/rand"

	"dqmx/internal/mutex"
	"dqmx/internal/sim"
)

// Sequential drives light load: sites issue requests one at a time in
// round-robin order with a gap long enough that a request completes before
// the next is issued, so there is never contention (§5.1). It schedules
// total requests.
func Sequential(c *sim.Cluster, total int, gap sim.Time) {
	n := c.N()
	for k := 0; k < total; k++ {
		c.RequestAt(sim.Time(k)*gap, mutex.SiteID(k%n))
	}
}

// Saturated drives heavy load: every site requests at time 0 and re-requests
// immediately after each exit until it has completed perSite executions
// (§5.2). Under this load a waiting site has collected every reply except
// the one held by the site in the CS, which is exactly the regime where the
// synchronization delay dominates.
func Saturated(c *sim.Cluster, perSite int) {
	remaining := make(map[mutex.SiteID]int, c.N())
	for i := 0; i < c.N(); i++ {
		s := mutex.SiteID(i)
		remaining[s] = perSite - 1
		c.RequestAt(0, s)
	}
	prev := c.OnExit
	c.OnExit = func(c *sim.Cluster, s mutex.SiteID) {
		if prev != nil {
			prev(c, s)
		}
		if remaining[s] > 0 {
			remaining[s]--
			c.RequestNow(s)
		}
	}
}

// ClosedPoisson drives a closed-loop think-time workload: after each exit a
// site waits an exponentially distributed think time with the given mean
// before its next request. Small means approach saturation; large means
// approach the uncontended light-load regime. Each site performs perSite
// executions.
func ClosedPoisson(c *sim.Cluster, meanThink sim.Time, perSite int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	think := func() sim.Time {
		d := sim.Time(rng.ExpFloat64() * float64(meanThink))
		if d < 1 {
			d = 1
		}
		return d
	}
	remaining := make(map[mutex.SiteID]int, c.N())
	for i := 0; i < c.N(); i++ {
		s := mutex.SiteID(i)
		remaining[s] = perSite - 1
		c.RequestAt(think(), s)
	}
	prev := c.OnExit
	c.OnExit = func(c *sim.Cluster, s mutex.SiteID) {
		if prev != nil {
			prev(c, s)
		}
		if remaining[s] > 0 {
			remaining[s]--
			c.Kernel.After(think(), func() { c.RequestNow(s) })
		}
	}
}
