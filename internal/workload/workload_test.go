package workload_test

import (
	"testing"

	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/sim"
	"dqmx/internal/workload"
)

func newCluster(t *testing.T, n int) *sim.Cluster {
	t.Helper()
	c, err := sim.NewCluster(sim.Config{
		N: n, Algorithm: core.Algorithm{}, Delay: sim.ConstantDelay{D: 1000}, Seed: 1, CSTime: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSequentialIssuesTotalRequests(t *testing.T) {
	c := newCluster(t, 4)
	workload.Sequential(c, 10, 100000)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Issued() != 10 || c.Completed() != 10 {
		t.Fatalf("issued %d completed %d, want 10/10", c.Issued(), c.Completed())
	}
	// Round-robin: requests alternate across sites with no contention, so
	// every record is fully sequential in time.
	recs := c.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].Requested < recs[i-1].Exited {
			t.Fatalf("sequential workload overlapped: %+v then %+v", recs[i-1], recs[i])
		}
	}
}

func TestSaturatedCompletesPerSiteQuota(t *testing.T) {
	c := newCluster(t, 4)
	workload.Saturated(c, 7)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := c.Completed(), 4*7; got != want {
		t.Fatalf("completed %d, want %d", got, want)
	}
	perSite := map[int]int{}
	for _, r := range c.Records() {
		perSite[int(r.Site)]++
	}
	for s, k := range perSite {
		if k != 7 {
			t.Errorf("site %d completed %d, want 7", s, k)
		}
	}
}

// TestSaturatedChainsOnExitHooks: Saturated must preserve a pre-installed
// OnExit hook instead of replacing it.
func TestSaturatedChainsOnExitHooks(t *testing.T) {
	c := newCluster(t, 2)
	calls := 0
	c.OnExit = func(*sim.Cluster, mutex.SiteID) { calls++ }
	workload.Saturated(c, 3)
	c.Run(0)
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if calls != c.Completed() {
		t.Fatalf("pre-installed hook ran %d times, want %d", calls, c.Completed())
	}
}

func TestClosedPoissonCompletesQuota(t *testing.T) {
	for _, think := range []sim.Time{10, 1000, 100000} {
		c := newCluster(t, 5)
		workload.ClosedPoisson(c, think, 4, 9)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatalf("think=%d: %v", think, err)
		}
		if got, want := c.Completed(), 5*4; got != want {
			t.Fatalf("think=%d: completed %d, want %d", think, got, want)
		}
	}
}

func TestClosedPoissonDeterministicPerSeed(t *testing.T) {
	run := func() (uint64, sim.Time) {
		c := newCluster(t, 5)
		workload.ClosedPoisson(c, 5000, 3, 42)
		c.Run(0)
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		return c.Net.Total(), c.Kernel.Now()
	}
	m1, t1 := run()
	m2, t2 := run()
	if m1 != m2 || t1 != t2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", m1, t1, m2, t2)
	}
}
