package session

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/resource"
	"dqmx/internal/transport"
)

// startArbiter runs one session server over site 0 of a fresh 3-site
// cluster with explicit backpressure caps.
func startArbiter(t *testing.T, cfg ServerConfig) (addr string, srv *Server) {
	t.Helper()
	cluster, err := transport.NewClusterConfig(transport.ClusterConfig{
		Algorithm: core.Algorithm{},
		N:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Site = mutex.SiteID(0)
	cfg.Locks = LockerFunc(func(name string) (*resource.Lock, error) {
		return cluster.Lock(mutex.SiteID(0), name)
	})
	cfg.Listener = ln
	srv, err = NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

// TestMaxSessionsBackpressure: an arbiter at its session cap refuses new
// sessions with the typed overload signal, keeps serving the admitted one,
// and admits again once a slot frees.
func TestMaxSessionsBackpressure(t *testing.T) {
	addr, srv := startArbiter(t, ServerConfig{Lease: time.Second, MaxSessions: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c1, err := Dial(ctx, ClientConfig{Addrs: []string{addr}, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// The second session must be refused — and the refusal must be typed.
	_, err = Dial(ctx, ClientConfig{Addrs: []string{addr}, Lease: time.Second,
		FailoverWindow: 300 * time.Millisecond})
	if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrSessionLost) {
		t.Fatalf("dial past the session cap: got %v, want ErrOverloaded (or ErrSessionLost after the window)", err)
	}
	if st := srv.Stats(); st.Overloaded == 0 {
		t.Fatalf("stats = %+v, want Overloaded > 0", st)
	}

	// The admitted session still works under pressure.
	l, err := c1.Lock("orders")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}

	// Freeing the slot re-admits.
	c1.Close()
	waitFor(t, func() bool { return srv.Stats().Active == 0 })
	c3, err := Dial(ctx, ClientConfig{Addrs: []string{addr}, Lease: time.Second})
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	c3.Close()
}

// TestMaxPendingBackoffRetry: an acquire past the in-flight cap is refused
// server-side but retried with backoff client-side, so the caller just sees
// a slower grant once capacity frees.
func TestMaxPendingBackoffRetry(t *testing.T) {
	addr, srv := startArbiter(t, ServerConfig{Lease: time.Second, MaxPending: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	holder, err := Dial(ctx, ClientConfig{Addrs: []string{addr}, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	hx, err := holder.Lock("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := hx.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(ctx, ClientConfig{Addrs: []string{addr}, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// First acquire blocks on the held lock and occupies the session's one
	// pending slot.
	cx, err := c.Lock("x")
	if err != nil {
		t.Fatal(err)
	}
	xDone := make(chan error, 1)
	go func() { xDone <- cx.Acquire(ctx) }()
	waitFor(t, func() bool { return srv.Stats().Active == 2 })
	time.Sleep(50 * time.Millisecond) // let the x-acquire reach the arbiter

	// Second acquire exceeds MaxPending: rejected, retried with backoff.
	cy, err := c.Lock("y")
	if err != nil {
		t.Fatal(err)
	}
	yDone := make(chan error, 1)
	go func() { yDone <- cy.Acquire(ctx) }()
	waitFor(t, func() bool { return srv.Stats().Overloaded > 0 })

	// Free the contended lock: x is granted, its slot frees, y's retry lands.
	if err := hx.Release(); err != nil {
		t.Fatal(err)
	}
	if err := <-xDone; err != nil {
		t.Fatalf("contended acquire: %v", err)
	}
	if err := <-yDone; err != nil {
		t.Fatalf("backpressured acquire: %v", err)
	}
	if err := cx.Release(); err != nil {
		t.Fatal(err)
	}
	if err := cy.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadedAcquireHonorsContext: with capacity permanently exhausted,
// the backoff retry loop gives up when the caller's context does, and the
// error is typed.
func TestOverloadedAcquireHonorsContext(t *testing.T) {
	addr, _ := startArbiter(t, ServerConfig{Lease: time.Second, MaxPending: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	holder, err := Dial(ctx, ClientConfig{Addrs: []string{addr}, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	hx, err := holder.Lock("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := hx.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(ctx, ClientConfig{Addrs: []string{addr}, Lease: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cx, err := c.Lock("x")
	if err != nil {
		t.Fatal(err)
	}
	go cx.Acquire(ctx) // occupies the only pending slot for the whole test
	time.Sleep(50 * time.Millisecond)

	cy, err := c.Lock("y")
	if err != nil {
		t.Fatal(err)
	}
	shortCtx, shortCancel := context.WithTimeout(ctx, 400*time.Millisecond)
	defer shortCancel()
	err = cy.Acquire(shortCtx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("exhausted retry: got %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("exhausted retry: got %v, want the context cause attached", err)
	}
}

// TestLeaseSafetyMargin: holding a lock with the lease deadline inside the
// margin fires the warning callback from the keepalive loop.
func TestLeaseSafetyMargin(t *testing.T) {
	addr, _ := startArbiter(t, ServerConfig{Lease: 500 * time.Millisecond})

	var warns atomic.Int64
	var lastRemaining atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientConfig{
		Addrs:     []string{addr},
		Lease:     500 * time.Millisecond,
		Keepalive: 50 * time.Millisecond,
		// Margin wider than the TTL: every keepalive tick holding a lock is
		// inside the danger window, so the warning must fire promptly.
		SafetyMargin: 2 * time.Second,
		OnLeaseWarning: func(deadline time.Time, remaining time.Duration) {
			warns.Add(1)
			lastRemaining.Store(int64(remaining))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// No lock held: the watchdog must stay quiet.
	time.Sleep(200 * time.Millisecond)
	if n := warns.Load(); n != 0 {
		t.Fatalf("%d warnings while holding nothing", n)
	}

	l, err := c.Lock("orders")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return warns.Load() > 0 })
	if rem := time.Duration(lastRemaining.Load()); rem > 2*time.Second {
		t.Fatalf("warning reported remaining %v beyond the margin", rem)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
