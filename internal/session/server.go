package session

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
	"dqmx/internal/wire"
)

// Locker is the arbiter-side lock surface the session server drives: any
// source of canonical *resource.Lock handles. In production it is a
// transport.TCPPeer; tests compose the server over one site of an
// in-process cluster, which is what lets the lease⇄§6 composition run
// under the chaos fabric.
type Locker interface {
	Lock(name string) (*resource.Lock, error)
}

// LockerFunc adapts a function to the Locker interface.
type LockerFunc func(name string) (*resource.Lock, error)

// Lock implements Locker.
func (f LockerFunc) Lock(name string) (*resource.Lock, error) { return f(name) }

// Server defaults.
const (
	// DefaultLease is the lease TTL granted when neither the server config
	// nor the client's hello names one.
	DefaultLease = 2 * time.Second
	// DefaultMaxLease caps client-requested lease TTLs.
	DefaultMaxLease = 30 * time.Second
	// DefaultHandshakeTimeout bounds the preamble + hello exchange.
	DefaultHandshakeTimeout = 5 * time.Second
	// DefaultMaxPending is the per-session cap on in-flight acquires.
	DefaultMaxPending = 128
	// DefaultMaxSessions is the per-arbiter cap on concurrent sessions.
	DefaultMaxSessions = 1024
)

// errOverloadedText is the distinguished wire string for backpressure
// rejections. The client maps it back to the typed ErrOverloaded and backs
// off before retrying, so transient overload degrades to added latency
// instead of failed operations.
const errOverloadedText = "arbiter overloaded"

// ServerConfig configures one arbiter's session server.
type ServerConfig struct {
	// Site identifies the arbiter in observability events.
	Site mutex.SiteID
	// Locks supplies the arbiter's lock handles (required).
	Locks Locker
	// Listener accepts client connections (required). The server owns it
	// and closes it on Close.
	Listener net.Listener
	// Codec caps the wire version spoken to clients; nil means the default
	// (binary). Accepted by name to mirror the transport's WireConfig.
	Codec string
	// Lease is the default lease TTL (DefaultLease when zero); MaxLease
	// caps client-requested TTLs (DefaultMaxLease when zero).
	Lease    time.Duration
	MaxLease time.Duration
	// HandshakeTimeout bounds the preamble + hello exchange.
	HandshakeTimeout time.Duration
	// MaxPending caps concurrently in-flight acquires per session.
	MaxPending int
	// MaxSessions caps concurrent sessions at this arbiter
	// (DefaultMaxSessions when zero). A hello past the cap is rejected with
	// the overload signal; reattaches to live sessions are always admitted,
	// so backpressure never severs an established client.
	MaxSessions int
	// Sink receives session lifecycle events (may be nil).
	Sink obs.Sink
}

// Stats is a point-in-time copy of the server's session counters.
type Stats struct {
	// Active is the number of live sessions.
	Active int
	// Opened, Expired, Closed count session lifecycle transitions;
	// Attaches counts connection attachments (opens plus reattaches).
	Opened   uint64
	Expired  uint64
	Closed   uint64
	Attaches uint64
	// Reclaimed counts locks released on behalf of expired sessions.
	Reclaimed uint64
	// Overloaded counts backpressure rejections: session opens past
	// MaxSessions plus acquires past MaxPending.
	Overloaded uint64
}

// Server serves leased lock sessions for one arbiter site.
type Server struct {
	cfg   ServerConfig
	codec wire.Codec
	epoch time.Time

	mu       sync.Mutex
	sessions map[uint64]*serverSession
	nextID   uint64
	// lastEpoch is the newest fencing token minted; new sessions take
	// max(lastEpoch+1, unix-nanos) so tokens stay strictly increasing within
	// an arbiter and, being time-derived, advance across arbiter restarts
	// and failovers in practice.
	lastEpoch uint64
	closed    bool
	stats     Stats

	stopC chan struct{}
	wg    sync.WaitGroup
}

// serverSession is the arbiter-side session state. All fields below the
// embedded identity are guarded by the owning Server's mutex.
type serverSession struct {
	id    uint64
	ttl   time.Duration
	epoch uint64 // fencing token; fixed at session creation

	deadline time.Time
	conn     *sessionConn
	held     map[string]*resource.Lock
	pending  map[uint64]*pendingOp
	gone     bool // expired or closed; terminal

	// ctx is the session-lifetime context: every pending acquire derives
	// from it, so expiry cancels them all.
	ctx    context.Context
	cancel context.CancelFunc
}

// pendingOp tracks one in-flight acquire so a cancel (or expiry, or conn
// detach) can abort it even when the protocol grant races the abort.
type pendingOp struct {
	cancel    context.CancelFunc
	cancelled bool
}

// NewServer starts serving sessions on cfg.Listener.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Locks == nil {
		return nil, errors.New("session: ServerConfig.Locks is required")
	}
	if cfg.Listener == nil {
		return nil, errors.New("session: ServerConfig.Listener is required")
	}
	codec, err := wire.ForName(cfg.Codec)
	if err != nil {
		return nil, err
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	if cfg.MaxLease <= 0 {
		cfg.MaxLease = DefaultMaxLease
	}
	if cfg.MaxLease < cfg.Lease {
		cfg.MaxLease = cfg.Lease
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	srv := &Server{
		cfg:      cfg,
		codec:    codec,
		epoch:    time.Now(),
		sessions: make(map[uint64]*serverSession),
		// Session IDs start at a time-derived offset so IDs from a previous
		// incarnation of this arbiter are unlikely to alias into the new
		// table when a client reattaches across a restart.
		nextID: uint64(time.Now().UnixNano()),
		stopC:  make(chan struct{}),
	}
	srv.wg.Add(2)
	go srv.acceptLoop()
	go srv.leaseLoop()
	return srv, nil
}

// Addr returns the client-facing listen address.
func (srv *Server) Addr() net.Addr { return srv.cfg.Listener.Addr() }

// Stats returns a copy of the session counters.
func (srv *Server) Stats() Stats {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	s := srv.stats
	s.Active = len(srv.sessions)
	return s
}

// now returns the server-relative event timestamp.
func (srv *Server) now() int64 { return int64(time.Since(srv.epoch)) }

// emit reports one session lifecycle event.
func (srv *Server) emit(t obs.EventType, resource string) {
	if srv.cfg.Sink != nil {
		srv.cfg.Sink(obs.Event{Type: t, Site: srv.cfg.Site, Time: srv.now(), Resource: resource})
	}
}

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		c, err := srv.cfg.Listener.Accept()
		if err != nil {
			select {
			case <-srv.stopC:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		srv.wg.Add(1)
		go srv.handleConn(c)
	}
}

// leaseLoop is the expiry scanner: it sweeps the session table and expires
// every session whose lease ran out, reclaiming its locks.
func (srv *Server) leaseLoop() {
	defer srv.wg.Done()
	tick := srv.cfg.Lease / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-srv.stopC:
			return
		case <-t.C:
		}
		now := time.Now()
		var expired []*serverSession
		srv.mu.Lock()
		for _, s := range srv.sessions {
			if now.After(s.deadline) {
				expired = append(expired, s)
			}
		}
		srv.mu.Unlock()
		for _, s := range expired {
			srv.teardown(s, true, "lease expired")
		}
	}
}

// teardown ends a session: expiry (reclaim accounting, expire notice) or
// orderly close. Idempotent; the lock reclaims re-enter the quorum protocol
// as ordinary releases, so the next waiter is granted through the normal
// transfer path.
func (srv *Server) teardown(s *serverSession, expired bool, reason string) {
	srv.mu.Lock()
	if s.gone {
		srv.mu.Unlock()
		return
	}
	s.gone = true
	delete(srv.sessions, s.id)
	for _, op := range s.pending {
		op.cancelled = true
		op.cancel()
	}
	held := s.held
	s.held = nil
	conn := s.conn
	s.conn = nil
	if expired {
		srv.stats.Expired++
		srv.stats.Reclaimed += uint64(len(held))
	} else {
		srv.stats.Closed++
	}
	srv.mu.Unlock()
	s.cancel()
	for name, h := range held {
		h.Release()
		if expired {
			srv.emit(obs.EventLockReclaim, name)
		}
	}
	if expired {
		srv.emit(obs.EventSessionExpire, "")
	} else {
		srv.emit(obs.EventSessionClose, "")
	}
	if conn != nil {
		if expired {
			conn.send(envelope("", expireMsg{SessionID: s.id, Reason: reason}))
		}
		// The conn's read loop owns the full close; just unblock it.
		conn.kill()
	}
}

// handleConn negotiates one client connection, binds it to a session (new
// or reattached), and runs its read loop.
func (srv *Server) handleConn(c net.Conn) {
	defer srv.wg.Done()
	sc, err := serverHandshake(c, srv.codec, srv.cfg.HandshakeTimeout)
	if err != nil {
		c.Close()
		return
	}
	// The hello must arrive within the handshake window too.
	sc.c.SetReadDeadline(time.Now().Add(srv.cfg.HandshakeTimeout))
	env, err := sc.recv()
	if err != nil {
		sc.close()
		return
	}
	hello, ok := env.Msg.(helloMsg)
	if !ok {
		sc.send(envelope("", grantMsg{Err: fmt.Sprintf("expected hello, got %T", env.Msg)}))
		sc.close()
		return
	}
	sc.c.SetReadDeadline(time.Time{})
	s, grant := srv.attach(sc, hello)
	if s == nil {
		sc.send(envelope("", grant))
		sc.close()
		return
	}
	if err := sc.send(envelope("", grant)); err != nil {
		srv.detach(s, sc)
		sc.close()
		return
	}
	srv.readLoop(s, sc)
}

// attach binds a negotiated connection to a session: reattach when the
// hello names a live session, otherwise a fresh session (the authoritative
// ID rides back in the grant; a client that asked for a dead session learns
// its locks are gone by seeing a different ID).
func (srv *Server) attach(sc *sessionConn, hello helloMsg) (*serverSession, grantMsg) {
	ttl := srv.cfg.Lease
	if hello.TTLMillis > 0 {
		ttl = time.Duration(hello.TTLMillis) * time.Millisecond
		if ttl > srv.cfg.MaxLease {
			ttl = srv.cfg.MaxLease
		}
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		return nil, grantMsg{Err: "server shutting down"}
	}
	if s := srv.sessions[hello.SessionID]; s != nil && !s.gone {
		// Reattach: adopt the new connection. The old connection (if any)
		// is closed; its read loop will observe the swap and stand down.
		// In-flight acquires issued over the old connection are cancelled —
		// their replies can no longer be correlated, and the client will
		// reissue anything still wanted. The grant's Held list lets it
		// reconcile grants whose replies were lost.
		if s.conn != nil && s.conn != sc {
			s.conn.kill()
		}
		s.conn = sc
		for _, op := range s.pending {
			op.cancelled = true
			op.cancel()
		}
		s.deadline = time.Now().Add(s.ttl)
		srv.stats.Attaches++
		held := make([]string, 0, len(s.held))
		for name := range s.held {
			held = append(held, name)
		}
		sort.Strings(held)
		return s, grantMsg{SessionID: s.id, TTLMillis: uint64(s.ttl / time.Millisecond), Epoch: s.epoch, Held: held}
	}
	if len(srv.sessions) >= srv.cfg.MaxSessions {
		srv.stats.Overloaded++
		srv.emitLocked(obs.EventOverload)
		return nil, grantMsg{Err: errOverloadedText}
	}
	id := srv.nextID
	srv.nextID++
	if id == 0 {
		id = srv.nextID
		srv.nextID++
	}
	epoch := uint64(time.Now().UnixNano())
	if epoch <= srv.lastEpoch {
		epoch = srv.lastEpoch + 1
	}
	srv.lastEpoch = epoch
	ctx, cancel := context.WithCancel(context.Background())
	s := &serverSession{
		id:       id,
		ttl:      ttl,
		epoch:    epoch,
		deadline: time.Now().Add(ttl),
		conn:     sc,
		held:     make(map[string]*resource.Lock),
		pending:  make(map[uint64]*pendingOp),
		ctx:      ctx,
		cancel:   cancel,
	}
	srv.sessions[id] = s
	srv.stats.Opened++
	srv.stats.Attaches++
	srv.emitLocked(obs.EventSessionOpen)
	return s, grantMsg{SessionID: id, TTLMillis: uint64(ttl / time.Millisecond), Epoch: epoch}
}

// emitLocked emits with srv.mu held (the sink must not call back).
func (srv *Server) emitLocked(t obs.EventType) {
	if srv.cfg.Sink != nil {
		srv.cfg.Sink(obs.Event{Type: t, Site: srv.cfg.Site, Time: srv.now()})
	}
}

// detach unbinds a dead connection from its session. The session itself
// survives until its lease runs out (the reconnect grace window); pending
// acquires die with the connection that carried them.
func (srv *Server) detach(s *serverSession, sc *sessionConn) {
	srv.mu.Lock()
	if s.conn == sc {
		s.conn = nil
		for _, op := range s.pending {
			op.cancelled = true
			op.cancel()
		}
	}
	srv.mu.Unlock()
}

// readLoop dispatches one connection's frames until it dies.
func (srv *Server) readLoop(s *serverSession, sc *sessionConn) {
	defer func() {
		srv.detach(s, sc)
		sc.close()
	}()
	for {
		env, err := sc.recv()
		if err != nil {
			return
		}
		srv.mu.Lock()
		if s.gone || s.conn != sc {
			srv.mu.Unlock()
			return
		}
		// Any frame from the client renews the lease.
		s.deadline = time.Now().Add(s.ttl)
		srv.mu.Unlock()
		switch msg := env.Msg.(type) {
		case keepaliveMsg:
			sc.send(envelope("", keepaliveMsg{SessionID: s.id}))
		case lockReqMsg:
			srv.handleLockReq(s, sc, env.Resource, msg)
		case byeMsg:
			srv.teardown(s, false, "client close")
			return
		case helloMsg:
			// Duplicate hello on a live stream: answer idempotently.
			srv.mu.Lock()
			held := make([]string, 0, len(s.held))
			for name := range s.held {
				held = append(held, name)
			}
			sort.Strings(held)
			ttl := s.ttl
			srv.mu.Unlock()
			sc.send(envelope("", grantMsg{SessionID: s.id, TTLMillis: uint64(ttl / time.Millisecond), Epoch: s.epoch, Held: held}))
		default:
			// Unknown-but-decodable frames are ignored for forward compat.
		}
	}
}

// handleLockReq processes one acquire/release/cancel.
func (srv *Server) handleLockReq(s *serverSession, sc *sessionConn, name string, req lockReqMsg) {
	switch req.Op {
	case opAcquire:
		srv.mu.Lock()
		if s.gone {
			srv.mu.Unlock()
			return
		}
		if _, dup := s.held[name]; dup {
			srv.mu.Unlock()
			srv.reply(s, lockRepMsg{ReqID: req.ReqID, Err: "lock already held by this session"})
			return
		}
		if len(s.pending) >= srv.cfg.MaxPending {
			srv.stats.Overloaded++
			srv.emitLocked(obs.EventOverload)
			srv.mu.Unlock()
			srv.reply(s, lockRepMsg{ReqID: req.ReqID, Err: errOverloadedText})
			return
		}
		ctx, cancel := context.WithCancel(s.ctx)
		op := &pendingOp{cancel: cancel}
		s.pending[req.ReqID] = op
		srv.mu.Unlock()
		srv.wg.Add(1)
		go srv.runAcquire(s, name, req.ReqID, op, ctx)
	case opRelease:
		srv.mu.Lock()
		h := s.held[name]
		delete(s.held, name)
		srv.mu.Unlock()
		if h == nil {
			srv.reply(s, lockRepMsg{ReqID: req.ReqID, Err: "lock not held by this session"})
			return
		}
		if err := h.Release(); err != nil {
			srv.reply(s, lockRepMsg{ReqID: req.ReqID, Err: err.Error()})
			return
		}
		srv.reply(s, lockRepMsg{ReqID: req.ReqID, OK: true})
	case opCancel:
		// The acquire goroutine owns the reply; cancelling twice is fine.
		srv.mu.Lock()
		if op := s.pending[req.ReqID]; op != nil {
			op.cancelled = true
			op.cancel()
		}
		srv.mu.Unlock()
	}
}

// runAcquire drives one client acquire through the arbiter's quorum
// protocol. The grant can race cancellation and lease expiry; whoever wins,
// a granted-but-unwanted lock is always handed straight back (the protocol
// treats it as an ordinary release, preserving the transfer-path handoff).
func (srv *Server) runAcquire(s *serverSession, name string, reqID uint64, op *pendingOp, ctx context.Context) {
	defer srv.wg.Done()
	h, err := srv.cfg.Locks.Lock(name)
	if err != nil {
		srv.mu.Lock()
		delete(s.pending, reqID)
		srv.mu.Unlock()
		srv.reply(s, lockRepMsg{ReqID: reqID, Err: err.Error()})
		return
	}
	err = h.Acquire(ctx)
	srv.mu.Lock()
	delete(s.pending, reqID)
	if err != nil {
		srv.mu.Unlock()
		srv.reply(s, lockRepMsg{ReqID: reqID, Err: acquireErrString(err, op)})
		return
	}
	if s.gone || op.cancelled {
		// Granted, but the session expired or the client cancelled while
		// the quorum was deciding: hand the lock straight back.
		gone := s.gone
		srv.mu.Unlock()
		h.Release()
		if gone {
			srv.mu.Lock()
			srv.stats.Reclaimed++
			srv.mu.Unlock()
			srv.emit(obs.EventLockReclaim, name)
			return
		}
		srv.reply(s, lockRepMsg{ReqID: reqID, Err: "acquire cancelled"})
		return
	}
	s.held[name] = h
	srv.mu.Unlock()
	srv.reply(s, lockRepMsg{ReqID: reqID, OK: true})
}

// acquireErrString folds context cancellation into a stable client-facing
// reason.
func acquireErrString(err error, op *pendingOp) string {
	if errors.Is(err, context.Canceled) {
		if op.cancelled {
			return "acquire cancelled"
		}
		return "session ended"
	}
	return err.Error()
}

// reply sends one lock reply over the session's current connection (which
// may differ from the one that carried the request after a reattach; reqIDs
// are client-unique, so late replies route or are dropped client-side).
func (srv *Server) reply(s *serverSession, rep lockRepMsg) {
	srv.mu.Lock()
	sc := s.conn
	srv.mu.Unlock()
	if sc != nil {
		sc.send(envelope("", rep))
	}
}

// Close stops accepting, ends every session (orderly: held locks are
// released so waiters elsewhere are not stranded), and waits for the
// server's goroutines.
func (srv *Server) Close() {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		srv.wg.Wait()
		return
	}
	srv.closed = true
	sessions := make([]*serverSession, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	close(srv.stopC)
	srv.cfg.Listener.Close()
	for _, s := range sessions {
		srv.teardown(s, false, "server shutdown")
	}
	srv.wg.Wait()
}
