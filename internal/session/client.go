package session

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/resource"
	"dqmx/internal/transport"
	"dqmx/internal/wire"
)

// Terminal client errors.
var (
	// ErrSessionLost means the client could not maintain a session with any
	// arbiter within the configured window; every operation on the client
	// fails with it from then on.
	ErrSessionLost = errors.New("session: session lost (no arbiter reachable within the failover window)")
	// ErrClientClosed is returned by operations after Close or Abandon.
	ErrClientClosed = errors.New("session: client closed")
	// ErrOverloaded means the arbiter refused work for backpressure (its
	// session or in-flight acquire cap is full). Acquire retries with
	// exponential backoff on its own; the error surfaces only when the
	// caller's context runs out first, or from Dial when every arbiter in
	// the chain is saturated.
	ErrOverloaded = errors.New("session: arbiter overloaded")
)

// Client defaults.
const (
	// DefaultClientLease is the lease TTL requested when the config names
	// none.
	DefaultClientLease = 2 * time.Second
	// DefaultDialTimeout bounds one dial + handshake attempt.
	DefaultDialTimeout = 2 * time.Second
)

// ClientConfig configures Dial.
type ClientConfig struct {
	// Addrs lists the arbiters' client-facing addresses; the client
	// attaches to the first reachable one and fails over along the list.
	Addrs []string
	// Codec names the wire codec to propose ("" = binary).
	Codec string
	// Lease is the requested lease TTL (DefaultClientLease when zero). The
	// server may cap it; the granted TTL governs.
	Lease time.Duration
	// Keepalive is the renewal period (granted TTL / 3 when zero).
	Keepalive time.Duration
	// DialTimeout bounds one dial + handshake attempt.
	DialTimeout time.Duration
	// FailoverWindow is how long the client keeps retrying arbiters after
	// losing its connection before declaring the session lost
	// (3 × granted TTL when zero).
	FailoverWindow time.Duration
	// Policy bounds lock names client-side, mirroring the arbiter's.
	Policy resource.Policy
	// SafetyMargin arms the lease-safety watchdog: while any lock is held
	// and the conservative lease deadline (see LeaseDeadline) is closer
	// than this margin, OnLeaseWarning fires. Work holding a lock that
	// close to expiry risks the arbiter reclaiming it mid-flight. Zero
	// disables the watchdog.
	SafetyMargin time.Duration
	// OnLeaseWarning receives lease-safety warnings: the conservative lease
	// deadline and the time remaining until it (non-positive when already
	// past). Called from the client's keepalive goroutine, at most once per
	// keepalive interval; it must not block.
	OnLeaseWarning func(deadline time.Time, remaining time.Duration)
}

// result carries one routed lock reply. retry means the reply will never
// arrive (the connection it was issued on died) and the operation should
// reissue; sessionEpoch stamps which session incarnation delivered it.
type result struct {
	rep          lockRepMsg
	sessionEpoch uint64
	retry        bool
}

// call is one in-flight request awaiting its reply.
type call struct {
	ch chan result
}

// Client is a leased lock-service session: the client half of the session
// protocol. Session.Lock returns canonical *resource.Lock handles whose
// operations are forwarded to the attached arbiter; the client renews its
// lease in the background and fails over along its arbiter list when the
// connection dies.
//
// Failover semantics: reattaching to the *same* session (the arbiter kept
// it alive within the lease grace window) preserves held locks. When the
// session could not be preserved — the arbiter restarted, expired us, or a
// different arbiter answered — every held lock is lost: the old arbiter
// reclaims them at lease expiry, and Release on a lost handle returns
// resource.ErrLockLost (the handle itself stays usable for re-acquisition).
type Client struct {
	cfg   ClientConfig
	codec wire.Codec
	mgr   *resource.Manager

	mu sync.Mutex
	// conn is the attached stream (nil while reconnecting); attachC is
	// closed on every attach and terminal failure, and replaced on detach,
	// so operations can wait for "attached or dead" without polling.
	// attachArmed tracks whether attachC is still open (guards the close).
	conn        *sessionConn
	attachC     chan struct{}
	attachArmed bool
	// sessionID is the server-granted identity; sessionEpoch bumps whenever
	// it changes, invalidating grants from earlier incarnations.
	sessionID    uint64
	sessionEpoch uint64
	// fence is the arbiter-minted fencing token from the last grant (see
	// grantMsg.Epoch); 0 before the first attach.
	fence uint64
	// leaseBase is the local send time of the newest frame known to have
	// reached the arbiter (the hello at attach, then each echoed keepalive);
	// leaseBase + leaseTTL is a conservative lower bound on the server-side
	// lease deadline. kaSent queues the send times of unechoed keepalives.
	leaseBase time.Time
	kaSent    []time.Time
	// serverHeld is the authoritative held-lock set from the last grant,
	// consulted when retrying releases across a reattach.
	serverHeld map[string]bool
	leaseTTL   time.Duration
	lastIn     time.Time
	pending    map[uint64]*call
	nextReq    uint64
	instances  map[string]*clientInstance
	err        error // terminal: ErrSessionLost or ErrClientClosed
	closed     bool

	stopC chan struct{}
	wg    sync.WaitGroup
}

// Dial establishes a session with the first reachable arbiter. The context
// bounds only the initial attach; the returned client manages its own
// lifetime afterwards.
func Dial(ctx context.Context, cfg ClientConfig) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("session: no arbiter addresses")
	}
	codec, err := wire.ForName(cfg.Codec)
	if err != nil {
		return nil, err
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultClientLease
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	c := &Client{
		cfg:         cfg,
		codec:       codec,
		attachC:     make(chan struct{}),
		attachArmed: true,
		serverHeld:  make(map[string]bool),
		pending:     make(map[uint64]*call),
		instances:   make(map[string]*clientInstance),
		stopC:       make(chan struct{}),
	}
	c.mgr = resource.NewManager(resource.Config{
		Policy: cfg.Policy,
		New: func(name string) (resource.Instance, error) {
			inst := &clientInstance{c: c, name: name}
			c.mu.Lock()
			c.instances[name] = inst
			c.mu.Unlock()
			return inst, nil
		},
	})
	c.wg.Add(1)
	go c.run()
	// Wait for the first attach (or terminal failure) before returning.
	c.mu.Lock()
	ch := c.attachC
	c.mu.Unlock()
	select {
	case <-ch:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return c, nil
	case <-ctx.Done():
		c.close(false)
		return nil, ctx.Err()
	}
}

// ID returns the current server-granted session identity (0 when detached
// before the first grant).
func (c *Client) ID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessionID
}

// Fence returns the fencing token of the current session incarnation, as
// minted by the arbiter in the grant (0 before the first attach). Tokens are
// strictly increasing per arbiter and survive reattaches to the same
// session; any failover that loses the session — and with it every held
// lock — yields a larger token. A resource guarded by a session lock can
// store the largest token it has accepted and reject older ones, fencing
// out a client that lost its lease but has not yet noticed.
func (c *Client) Fence() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fence
}

// LeaseDeadline returns a conservative lower bound on the instant the
// arbiter's lease on this session expires: the send time of the newest
// frame known (via its echo) to have reached the arbiter, plus the granted
// TTL. The server's real deadline is never earlier — every received frame
// renews the full TTL there — so holding work past this instant risks the
// locks being reclaimed. Zero when no session has been granted yet.
func (c *Client) LeaseDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaseBase.IsZero() || c.leaseTTL <= 0 {
		return time.Time{}
	}
	return c.leaseBase.Add(c.leaseTTL)
}

// Err returns the terminal error once the session is lost or closed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Lock returns the canonical handle for the named lock; operations on it
// are served by the session's arbiter.
func (c *Client) Lock(name string) (*resource.Lock, error) {
	return c.mgr.Lock(name)
}

// Close ends the session in an orderly way: the arbiter releases every held
// lock immediately instead of waiting out the lease.
func (c *Client) Close() error {
	c.close(true)
	return nil
}

// Abandon kills the client without telling the arbiter — no bye, no
// further keepalives — simulating a client crash: the session's locks are
// reclaimed only when its lease expires. It exists for fault drills and
// tests of the lease-reclaim bound.
func (c *Client) Abandon() {
	c.close(false)
}

func (c *Client) close(sendBye bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	if c.err == nil {
		c.err = ErrClientClosed
	}
	conn := c.conn
	id := c.sessionID
	c.abortPendingLocked()
	c.mu.Unlock()
	if sendBye && conn != nil {
		conn.send(envelope("", byeMsg{SessionID: id}))
	}
	close(c.stopC)
	if conn != nil {
		// The pump goroutine owns the full close; just unblock it.
		conn.kill()
	}
	c.wg.Wait()
	c.mgr.Close()
}

// abortPendingLocked wakes every in-flight call with a retry signal; the
// caller holds c.mu. Operations re-check the client state before reissuing,
// so terminal states surface as errors rather than loops.
func (c *Client) abortPendingLocked() {
	for id, cl := range c.pending {
		delete(c.pending, id)
		select {
		case cl.ch <- result{retry: true}:
		default:
		}
	}
}

// fail moves the client to a terminal state.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.abortPendingLocked()
	// Wake waiters; attachC is never replaced after failure.
	if c.attachArmed {
		close(c.attachC)
		c.attachArmed = false
	}
	c.mu.Unlock()
}

// run is the connection manager: dial, attach, pump frames, fail over.
func (c *Client) run() {
	defer c.wg.Done()
	addrIdx := 0
	var disconnectedAt time.Time
	for {
		select {
		case <-c.stopC:
			return
		default:
		}
		sc, grant, helloSent, err := c.dialOne(c.cfg.Addrs[addrIdx%len(c.cfg.Addrs)])
		if err != nil {
			addrIdx++
			if disconnectedAt.IsZero() {
				disconnectedAt = time.Now()
			}
			window := c.cfg.FailoverWindow
			if window <= 0 {
				c.mu.Lock()
				ttl := c.leaseTTL
				c.mu.Unlock()
				if ttl <= 0 {
					ttl = c.cfg.Lease
				}
				window = 3 * ttl
			}
			if time.Since(disconnectedAt) > window {
				c.fail(ErrSessionLost)
				return
			}
			select {
			case <-c.stopC:
				return
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		disconnectedAt = time.Time{}
		if !c.attach(sc, grant, helloSent) {
			sc.close()
			return
		}
		c.pump(sc)
		c.detach(sc)
		sc.close()
		disconnectedAt = time.Now()
	}
}

// dialOne performs one dial + handshake + hello/grant exchange. helloSent
// is the local send time of the hello the grant answered — the base for
// the client's conservative lease-deadline bound.
func (c *Client) dialOne(addr string) (sc *sessionConn, grant grantMsg, helloSent time.Time, err error) {
	c.mu.Lock()
	id := c.sessionID
	c.mu.Unlock()
	nc, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, grantMsg{}, time.Time{}, err
	}
	sc, err = clientHandshake(nc, c.codec, c.cfg.DialTimeout)
	if err != nil {
		nc.Close()
		return nil, grantMsg{}, time.Time{}, err
	}
	hello := helloMsg{SessionID: id, TTLMillis: uint64(c.cfg.Lease / time.Millisecond)}
	helloSent = time.Now()
	if err := sc.send(envelope("", hello)); err != nil {
		sc.close()
		return nil, grantMsg{}, time.Time{}, err
	}
	sc.c.SetReadDeadline(time.Now().Add(c.cfg.DialTimeout))
	env, err := sc.recv()
	if err != nil {
		sc.close()
		return nil, grantMsg{}, time.Time{}, err
	}
	grant, ok := env.Msg.(grantMsg)
	if !ok {
		sc.close()
		return nil, grantMsg{}, time.Time{}, fmt.Errorf("session: expected grant, got %T", env.Msg)
	}
	if grant.Err != "" {
		sc.close()
		if grant.Err == errOverloadedText {
			// Typed, so a Dial that exhausts its window against saturated
			// arbiters reports overload rather than a generic dial failure.
			return nil, grantMsg{}, time.Time{}, fmt.Errorf("session: arbiter rejected hello: %w", ErrOverloaded)
		}
		return nil, grantMsg{}, time.Time{}, fmt.Errorf("session: arbiter rejected hello: %s", grant.Err)
	}
	sc.c.SetReadDeadline(time.Time{})
	return sc, grant, helloSent, nil
}

// attach installs a freshly granted connection, reconciling session
// identity and held-lock state, and wakes waiting operations. It reports
// false when the client was closed concurrently.
func (c *Client) attach(sc *sessionConn, grant grantMsg, helloSent time.Time) bool {
	var orphans []string
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	c.conn = sc
	if grant.SessionID != c.sessionID {
		// New session incarnation: grants from the old one are void. The
		// old arbiter (if it still runs) reclaims its locks at lease
		// expiry; held handles here report ErrLockLost on Release.
		c.sessionID = grant.SessionID
		c.sessionEpoch++
	}
	c.fence = grant.Epoch
	c.leaseTTL = time.Duration(grant.TTLMillis) * time.Millisecond
	// The grant proves the hello arrived, so the lease was renewed no
	// earlier than the hello's send time; unechoed keepalives from the old
	// connection will never be confirmed.
	c.leaseBase = helloSent
	c.kaSent = nil
	c.serverHeld = make(map[string]bool, len(grant.Held))
	for _, name := range grant.Held {
		c.serverHeld[name] = true
		// A lock the server holds for us that no local handle believes it
		// holds is an orphan: its grant reply was lost in flight. Release
		// it so it cannot outlive this client's interest.
		inst := c.instances[name]
		if inst == nil || !inst.held || inst.heldEpoch != c.sessionEpoch {
			orphans = append(orphans, name)
		}
	}
	c.lastIn = time.Now()
	c.abortPendingLocked()
	if c.attachArmed {
		close(c.attachC)
		c.attachArmed = false
	}
	c.mu.Unlock()
	for _, name := range orphans {
		reqID := c.reserveReq()
		sc.send(envelope(name, lockReqMsg{ReqID: reqID, Op: opRelease}))
	}
	return true
}

// detach clears the attached connection and arms a fresh attach barrier.
func (c *Client) detach(sc *sessionConn) {
	c.mu.Lock()
	if c.conn == sc {
		c.conn = nil
		if c.err == nil && !c.closed {
			c.attachC = make(chan struct{})
			c.attachArmed = true
		}
		c.abortPendingLocked()
	}
	c.mu.Unlock()
}

// reserveReq allocates a client-unique request ID.
func (c *Client) reserveReq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextReq++
	return c.nextReq
}

// pump reads frames and drives keepalives until the connection dies.
func (c *Client) pump(sc *sessionConn) {
	stopKA := make(chan struct{})
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.keepaliveLoop(sc, stopKA)
	}()
	defer close(stopKA)
	for {
		env, err := sc.recv()
		if err != nil {
			return
		}
		c.mu.Lock()
		c.lastIn = time.Now()
		switch msg := env.Msg.(type) {
		case keepaliveMsg:
			// The echo confirms the oldest unacknowledged keepalive reached
			// the arbiter and renewed the lease at (no earlier than) its
			// send time. Echoes come back in send order on this stream.
			if len(c.kaSent) > 0 {
				if t := c.kaSent[0]; t.After(c.leaseBase) {
					c.leaseBase = t
				}
				c.kaSent = c.kaSent[1:]
			}
			c.mu.Unlock()
		case lockRepMsg:
			if cl := c.pending[msg.ReqID]; cl != nil {
				delete(c.pending, msg.ReqID)
				select {
				case cl.ch <- result{rep: msg, sessionEpoch: c.sessionEpoch}:
				default:
				}
			}
			c.mu.Unlock()
		case expireMsg:
			// The arbiter expired us while attached: our locks are gone.
			// Start over with a fresh session on the next attach.
			c.sessionID = 0
			c.sessionEpoch++
			c.abortPendingLocked()
			c.mu.Unlock()
			return
		default:
			c.mu.Unlock()
		}
	}
}

// keepaliveLoop renews the lease and watches for a silent server: when
// nothing — not even an echo — arrives within the granted TTL, the
// connection is cut to force a failover.
func (c *Client) keepaliveLoop(sc *sessionConn, stop chan struct{}) {
	c.mu.Lock()
	ttl := c.leaseTTL
	id := c.sessionID
	c.mu.Unlock()
	interval := c.cfg.Keepalive
	if interval <= 0 {
		interval = ttl / 3
	}
	if interval <= 0 {
		interval = DefaultClientLease / 3
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-c.stopC:
			return
		case <-t.C:
		}
		c.mu.Lock()
		stale := ttl > 0 && time.Since(c.lastIn) > ttl
		c.mu.Unlock()
		if stale {
			sc.kill()
			return
		}
		c.checkLeaseMargin()
		c.mu.Lock()
		c.kaSent = append(c.kaSent, time.Now())
		c.mu.Unlock()
		if err := sc.send(envelope("", keepaliveMsg{SessionID: id})); err != nil {
			// The queued entry is never echoed; attach resets the queue
			// when the replacement connection comes up.
			sc.kill()
			return
		}
	}
}

// checkLeaseMargin is the lease-safety watchdog: when a lock is held this
// session and the conservative lease deadline is closer than the configured
// margin, the warning callback fires. The deadline bound is conservative
// (the server's real deadline is never earlier — see LeaseDeadline), so a
// warning can be early but never late.
func (c *Client) checkLeaseMargin() {
	margin, warn := c.cfg.SafetyMargin, c.cfg.OnLeaseWarning
	if margin <= 0 || warn == nil {
		return
	}
	c.mu.Lock()
	held := false
	for _, inst := range c.instances {
		if inst.held && inst.heldEpoch == c.sessionEpoch {
			held = true
			break
		}
	}
	var deadline time.Time
	if !c.leaseBase.IsZero() && c.leaseTTL > 0 {
		deadline = c.leaseBase.Add(c.leaseTTL)
	}
	c.mu.Unlock()
	if !held || deadline.IsZero() {
		return
	}
	if remaining := time.Until(deadline); remaining < margin {
		warn(deadline, remaining)
	}
}

// issue sends one lock request and waits for its reply. retry=true means
// the connection turned over before a reply arrived and the caller should
// re-evaluate and reissue; the request was not necessarily processed.
func (c *Client) issue(ctx context.Context, name string, op byte) (rep lockRepMsg, epoch uint64, retry bool, err error) {
	// Wait until attached (or a terminal state).
	for {
		c.mu.Lock()
		if c.err != nil {
			err := c.err
			c.mu.Unlock()
			return lockRepMsg{}, 0, false, err
		}
		if c.conn != nil {
			break // mu still held
		}
		ch := c.attachC
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return lockRepMsg{}, 0, false, ctx.Err()
		case <-c.stopC:
			return lockRepMsg{}, 0, false, ErrClientClosed
		}
	}
	sc := c.conn
	c.nextReq++
	reqID := c.nextReq
	cl := &call{ch: make(chan result, 1)}
	c.pending[reqID] = cl
	c.mu.Unlock()
	if err := sc.send(envelope(name, lockReqMsg{ReqID: reqID, Op: op})); err != nil {
		// The connection is dying; the pump will notice. Treat as retry.
		c.mu.Lock()
		delete(c.pending, reqID)
		c.mu.Unlock()
		return lockRepMsg{}, 0, true, nil
	}
	select {
	case res := <-cl.ch:
		if res.retry {
			return lockRepMsg{}, 0, true, nil
		}
		return res.rep, res.sessionEpoch, false, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, reqID)
		conn := c.conn
		c.mu.Unlock()
		if op == opAcquire && conn != nil {
			// Best-effort cancel: if the grant raced our cancellation the
			// arbiter hands the lock straight back.
			conn.send(envelope(name, lockReqMsg{ReqID: reqID, Op: opCancel}))
		}
		return lockRepMsg{}, 0, false, ctx.Err()
	case <-c.stopC:
		return lockRepMsg{}, 0, false, ErrClientClosed
	}
}

// clientInstance adapts one named lock to the resource.Instance interface:
// Acquire/Release forward to the arbiter; the local resource.Lock handle
// provides the same local-queueing semantics as a peer deployment. held and
// heldEpoch are guarded by the client's mutex.
type clientInstance struct {
	c    *Client
	name string

	held      bool
	heldEpoch uint64
}

// Acquire forwards to the arbiter, reissuing across failovers until
// granted, rejected, cancelled, or the client dies. Backpressure rejections
// (ErrOverloaded) are retried with exponential backoff — capped at half a
// second — for as long as the caller's context allows, so transient
// overload costs latency, not failures.
func (ci *clientInstance) Acquire(ctx context.Context) error {
	backoff := 5 * time.Millisecond
	for {
		rep, epoch, retry, err := ci.c.issue(ctx, ci.name, opAcquire)
		if err != nil {
			return err
		}
		if retry {
			continue
		}
		if !rep.OK {
			if rep.Err == errOverloadedText {
				select {
				case <-ctx.Done():
					return fmt.Errorf("session: acquire %q: %w: %w", ci.name, ErrOverloaded, ctx.Err())
				case <-ci.c.stopC:
					return ErrClientClosed
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > 500*time.Millisecond {
					backoff = 500 * time.Millisecond
				}
				continue
			}
			return fmt.Errorf("session: acquire %q: %s", ci.name, rep.Err)
		}
		ci.c.mu.Lock()
		ci.held = true
		ci.heldEpoch = epoch
		ci.c.mu.Unlock()
		return nil
	}
}

// TryAcquire maps running out of time to (false, nil) per the Instance
// contract.
func (ci *clientInstance) TryAcquire(ctx context.Context) (bool, error) {
	err := ci.Acquire(ctx)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return false, nil
	default:
		return false, err
	}
}

// Release forwards to the arbiter. A grant from an earlier session
// incarnation is gone — the old arbiter reclaims it at lease expiry — and
// reports resource.ErrLockLost; the handle stays usable.
func (ci *clientInstance) Release() error {
	for {
		ci.c.mu.Lock()
		if !ci.held {
			ci.c.mu.Unlock()
			return transport.ErrNotHeld
		}
		if ci.heldEpoch != ci.c.sessionEpoch {
			ci.held = false
			ci.c.mu.Unlock()
			return resource.ErrLockLost
		}
		ci.c.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), writeTimeout)
		rep, _, retry, err := ci.c.issue(ctx, ci.name, opRelease)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				continue // still trying; the held flag keeps this safe
			}
			return err
		}
		if retry {
			// The connection turned over mid-release. The fresh grant's
			// held set is authoritative: if the arbiter no longer lists
			// the lock, the release (or a reclaim) already happened.
			ci.c.mu.Lock()
			if ci.heldEpoch == ci.c.sessionEpoch && !ci.c.serverHeld[ci.name] {
				ci.held = false
				ci.c.mu.Unlock()
				return nil
			}
			ci.c.mu.Unlock()
			continue
		}
		ci.c.mu.Lock()
		ci.held = false
		ci.c.mu.Unlock()
		if !rep.OK {
			return fmt.Errorf("session: release %q: %s", ci.name, rep.Err)
		}
		return nil
	}
}

// Inject and InjectBatch are no-ops: clients are not protocol sites and
// receive no peer envelopes.
func (ci *clientInstance) Inject(env mutex.Envelope)         {}
func (ci *clientInstance) InjectBatch(envs []mutex.Envelope) {}

// Close is a no-op; the client's connection manager owns all resources.
func (ci *clientInstance) Close() {}
