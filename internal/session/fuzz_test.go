package session

// Black-box fuzzing of the session frame grammar against a live endpoint:
// every input runs through a real server — TCP accept, DQS preamble, codec
// negotiation, then the fuzzed bytes as the post-handshake frame stream.
// Whatever a client (or an attacker holding the port) sends after the
// handshake, the server's read loop must fail the connection cleanly:
// never panic, never wedge the arbiter. Inputs that decode into valid
// session frames (tags 48–54) exercise the live dispatch paths — duplicate
// hellos, keepalives, lock requests against the arbiter's quorum protocol —
// which is exactly the surface a hostile client reaches.

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/resource"
	"dqmx/internal/transport"
	"dqmx/internal/wire"
)

// sessionSeedFrames is realistic session traffic: every message type in the
// 48–54 tag range, including frames only the server normally emits — an
// attacker can send those too.
func sessionSeedFrames() [][]mutex.Envelope {
	return [][]mutex.Envelope{
		{envelope("", helloMsg{TTLMillis: 250})},
		{envelope("", helloMsg{SessionID: 7, TTLMillis: 1000})},
		{envelope("", grantMsg{SessionID: 9, TTLMillis: 500, Epoch: 41, Held: []string{"orders"}})},
		{envelope("", keepaliveMsg{SessionID: 3})},
		{envelope("", expireMsg{SessionID: 3, Reason: "lease expired"})},
		{envelope("orders", lockReqMsg{ReqID: 1, Op: opAcquire})},
		{envelope("orders", lockReqMsg{ReqID: 2, Op: opRelease})},
		{envelope("", byeMsg{SessionID: 3})},
		{
			envelope("", keepaliveMsg{SessionID: 1}),
			envelope("a", lockReqMsg{ReqID: 1, Op: opAcquire}),
			envelope("a", lockReqMsg{ReqID: 1, Op: opCancel}),
			envelope("", byeMsg{SessionID: 1}),
		},
	}
}

func sessionSeeds(t testing.TB) [][]byte {
	t.Helper()
	codec := wire.Binary()
	var seeds [][]byte
	for _, envs := range sessionSeedFrames() {
		var buf bytes.Buffer
		enc := codec.NewEncoder(&buf)
		for _, env := range envs {
			if err := enc.Encode(env); err != nil {
				t.Fatalf("encode seed: %v", err)
			}
		}
		if cl, ok := enc.(io.Closer); ok {
			cl.Close()
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

func FuzzSessionFrame(f *testing.F) {
	for _, seed := range sessionSeeds(f) {
		f.Add(seed)
	}
	cluster, err := transport.NewClusterConfig(transport.ClusterConfig{
		Algorithm: core.Algorithm{},
		N:         3,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(cluster.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Locks: LockerFunc(func(name string) (*resource.Lock, error) {
			return cluster.Lock(0, name)
		}),
		Listener: ln,
		// Short leases so the sessions the fuzzed connections open are
		// reclaimed promptly instead of accumulating across the run.
		Lease: 100 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(srv.Close)
	addr := ln.Addr().String()
	codec := wire.Binary()

	// A pre-encoded valid hello binds each fuzz connection to a session, so
	// the fuzz bytes land on the attached read loop — the full dispatch
	// surface — not just the handshake rejector.
	var helloBuf bytes.Buffer
	enc := codec.NewEncoder(&helloBuf)
	if err := enc.Encode(envelope("", helloMsg{TTLMillis: 100})); err != nil {
		f.Fatal(err)
	}
	if cl, ok := enc.(io.Closer); ok {
		cl.Close()
	}
	helloBytes := helloBuf.Bytes()

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatalf("dial live endpoint: %v", err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := nc.Write([]byte{preambleByte, preambleMagic[0], preambleMagic[1], preambleMagic[2], codec.Version()}); err != nil {
			t.Fatalf("preamble: %v", err)
		}
		var v [1]byte
		if _, err := io.ReadFull(nc, v[:]); err != nil {
			t.Fatalf("handshake answer: %v", err)
		}
		if _, err := nc.Write(helloBytes); err != nil {
			t.Fatalf("hello: %v", err)
		}
		// The fuzz payload is the rest of the stream. The server consumes it
		// from its own goroutine; a panic there crashes the fuzz process and
		// is the failure we are hunting. Write errors just mean the server
		// already rejected an earlier frame and closed on us — that is the
		// clean-failure path working.
		nc.Write(data)
		nc.Close()
		// The server must still be serviceable afterwards (its accept and
		// lease loops alive enough to answer a stats probe).
		_ = srv.Stats()
	})
}
