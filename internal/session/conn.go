package session

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dqmx/internal/mutex"
	"dqmx/internal/wire"
)

// The session handshake mirrors the transport's peer preamble but uses its
// own magic so a client that dials a peer port (or vice versa) fails loudly
// instead of desynchronizing two different stream grammars. Unlike peer
// links — which are unidirectional, one encoder per outbound connection —
// a session connection is duplex: the client opens with
//
//	0x00 'D' 'Q' 'S' <max version>
//
// and the server answers one byte, min(client max, server max); both sides
// then stack an encoder *and* a decoder of the negotiated codec on the same
// connection. There is no version-0 sniffing fallback: sessions postdate
// the binary codec, so every client speaks the preamble.
const (
	preambleByte  = 0x00
	preambleMagic = "DQS"
)

// writeTimeout bounds any single frame write so a dead client cannot wedge
// an arbiter goroutine beyond it; the lease machinery handles the rest.
const writeTimeout = 10 * time.Second

// sessionConn is one negotiated duplex session stream. Reads are owned by a
// single reader goroutine; sends are serialized by wmu so arbiter reply
// goroutines and keepalive echoes can share the stream.
//
// Teardown is split in two: kill (safe from any goroutine) closes the
// net.Conn to unblock the reader, while close — which also releases the
// codecs' pooled scratch — must only run in the reader goroutine after its
// recv loop exits, because decoders are not safe to close mid-Decode.
type sessionConn struct {
	c   net.Conn
	bw  *bufio.Writer
	enc wire.Encoder
	dec wire.Decoder

	wmu    sync.Mutex
	closed bool // guarded by wmu; fences sends against encoder teardown
}

// clientHandshake negotiates the stream from the dialing side.
func clientHandshake(c net.Conn, codec wire.Codec, timeout time.Duration) (*sessionConn, error) {
	deadline := time.Now().Add(timeout)
	if err := c.SetDeadline(deadline); err != nil {
		return nil, err
	}
	pre := []byte{preambleByte, preambleMagic[0], preambleMagic[1], preambleMagic[2], codec.Version()}
	if _, err := c.Write(pre); err != nil {
		return nil, fmt.Errorf("session: handshake write: %w", err)
	}
	var v [1]byte
	if _, err := io.ReadFull(c, v[:]); err != nil {
		return nil, fmt.Errorf("session: handshake read: %w", err)
	}
	if v[0] > codec.Version() {
		return nil, fmt.Errorf("session: server answered version %d above our %d", v[0], codec.Version())
	}
	negotiated, err := wire.ForVersion(v[0])
	if err != nil {
		return nil, err
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return newSessionConn(c, negotiated), nil
}

// serverHandshake negotiates the stream from the accepting side. maxCodec
// caps the version the server will speak.
func serverHandshake(c net.Conn, maxCodec wire.Codec, timeout time.Duration) (*sessionConn, error) {
	deadline := time.Now().Add(timeout)
	if err := c.SetDeadline(deadline); err != nil {
		return nil, err
	}
	var pre [5]byte
	if _, err := io.ReadFull(c, pre[:]); err != nil {
		return nil, fmt.Errorf("session: preamble read: %w", err)
	}
	if pre[0] != preambleByte || string(pre[1:4]) != preambleMagic {
		return nil, fmt.Errorf("session: bad preamble % x (not a session client)", pre[:4])
	}
	v := pre[4]
	if v > maxCodec.Version() {
		v = maxCodec.Version()
	}
	negotiated, err := wire.ForVersion(v)
	if err != nil {
		return nil, err
	}
	if _, err := c.Write([]byte{v}); err != nil {
		return nil, fmt.Errorf("session: handshake write: %w", err)
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	return newSessionConn(c, negotiated), nil
}

func newSessionConn(c net.Conn, codec wire.Codec) *sessionConn {
	bw := bufio.NewWriter(c)
	return &sessionConn{
		c:   c,
		bw:  bw,
		enc: codec.NewEncoder(bw),
		dec: codec.NewDecoder(bufio.NewReader(c)),
	}
}

// send encodes and flushes one frame. Safe for concurrent use.
func (sc *sessionConn) send(env mutex.Envelope) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	if sc.closed {
		return net.ErrClosed
	}
	sc.c.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := sc.enc.Encode(env); err != nil {
		return err
	}
	return sc.bw.Flush()
}

// recv blocks for the next frame; only the owning reader goroutine calls it.
func (sc *sessionConn) recv() (mutex.Envelope, error) {
	return sc.dec.Decode()
}

// kill unblocks the reader from any goroutine; the reader then closes.
func (sc *sessionConn) kill() {
	sc.c.Close()
}

// close tears the stream down and returns pooled codec scratch. Reader
// goroutine only (after its recv loop has exited).
func (sc *sessionConn) close() {
	sc.wmu.Lock()
	if !sc.closed {
		sc.closed = true
		if cl, ok := sc.enc.(io.Closer); ok {
			cl.Close()
		}
	}
	sc.wmu.Unlock()
	if cl, ok := sc.dec.(io.Closer); ok {
		cl.Close()
	}
	sc.c.Close()
}
