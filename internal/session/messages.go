// Package session is the lock-service tier: a small fixed coterie of
// arbiter sites — each a full participant in the quorum protocol — serves
// lock sessions to an unbounded population of lightweight clients. Clients
// never join the coterie, so quorum size (and the paper's 3(K−1)..6(K−1)
// message cost) stays constant as the client population grows; a client
// acquire is one request/reply exchange with its arbiter, and the arbiter
// competes on its behalf through the §3.1 protocol.
//
// Sessions are leased. A client's Hello is answered with a Grant carrying a
// session ID and a lease TTL; every subsequent frame from the client renews
// the lease, and a dedicated keepalive renews it across idle stretches.
// When a client crashes or partitions away, the lease runs out and the
// arbiter reclaims every lock the session held — the release re-enters the
// quorum protocol exactly like a voluntary exit, so the next waiter is
// granted through the delay-optimal transfer path and, when the *arbiter*
// crashed instead, the §6 recovery machinery takes over. The lease TTL is
// therefore the bounded window of the tentpole guarantee: a crashed
// client's lock is re-granted within lease + protocol-handoff time.
//
// The wire format reuses the transport's envelope codecs: session frames
// are mutex.Envelopes whose Msg is one of the session message types below,
// registered with internal/wire in the session tag range (48–55). The
// Resource field names the lock a frame is about; session identity rides in
// the payloads, not in the From/To site fields (clients are not sites).
package session

import (
	"dqmx/internal/mutex"
	"dqmx/internal/timestamp"
	"dqmx/internal/wire"
)

// Binary wire tags for the session message types (range 48–55, see the
// registry comment in internal/wire).
const (
	tagHello     byte = 48
	tagGrant     byte = 49
	tagKeepalive byte = 50
	tagLockReq   byte = 51
	tagLockRep   byte = 52
	tagExpire    byte = 53
	tagBye       byte = 54
)

// Lock operation codes carried by lockReqMsg.
const (
	opAcquire byte = 1
	opRelease byte = 2
	opCancel  byte = 3
)

// helloMsg opens (SessionID == 0) or reattaches (SessionID != 0) a client
// session. TTLMillis is the requested lease; 0 asks for the server default.
type helloMsg struct {
	SessionID uint64
	TTLMillis uint64
}

func (helloMsg) Kind() string { return "sess-hello" }

// grantMsg answers a hello. SessionID is authoritative: when it differs
// from the ID the client asked to reattach, the server did not know the old
// session and every lock it held is gone. Held lists the lock names the
// granted session holds server-side, letting a reattaching client reconcile
// grants whose replies were lost in flight. Epoch is the session's fencing
// token: minted strictly increasing per arbiter when a session is created,
// preserved across reattaches to the same session, so a downstream resource
// can reject writes fenced with a token older than the newest it has seen.
// A non-empty Err rejects the hello (the connection is then closed).
type grantMsg struct {
	SessionID uint64
	TTLMillis uint64
	Epoch     uint64
	Held      []string
	Err       string
}

func (grantMsg) Kind() string { return "sess-grant" }

// keepaliveMsg renews the lease (client→server) and proves server liveness
// (server→client echo).
type keepaliveMsg struct {
	SessionID uint64
}

func (keepaliveMsg) Kind() string { return "sess-keepalive" }

// lockReqMsg asks the arbiter to acquire, release, or cancel an acquire of
// the lock named by the envelope's Resource field. ReqID correlates the
// reply; an opCancel names the ReqID of the acquire it cancels.
type lockReqMsg struct {
	ReqID uint64
	Op    byte
}

func (lockReqMsg) Kind() string { return "sess-lock-req" }

// lockRepMsg answers an acquire or release. OK reports a granted acquire or
// a completed release; otherwise Err says why not (cancelled, expired,
// already held, …).
type lockRepMsg struct {
	ReqID uint64
	OK    bool
	Err   string
}

func (lockRepMsg) Kind() string { return "sess-lock-rep" }

// expireMsg tells an attached client its session was expired server-side;
// every lock it held has been reclaimed.
type expireMsg struct {
	SessionID uint64
	Reason    string
}

func (expireMsg) Kind() string { return "sess-expire" }

// byeMsg is an orderly client shutdown: the server releases the session's
// locks immediately instead of waiting out the lease.
type byeMsg struct {
	SessionID uint64
}

func (byeMsg) Kind() string { return "sess-bye" }

func init() {
	wire.RegisterMessage(tagHello, helloMsg{},
		func(b []byte, m mutex.Message) []byte {
			h := m.(helloMsg)
			b = wire.AppendUint(b, h.SessionID)
			return wire.AppendUint(b, h.TTLMillis)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return helloMsg{SessionID: r.Uint(), TTLMillis: r.Uint()}, nil
		})
	wire.RegisterMessage(tagGrant, grantMsg{},
		func(b []byte, m mutex.Message) []byte {
			g := m.(grantMsg)
			b = wire.AppendUint(b, g.SessionID)
			b = wire.AppendUint(b, g.TTLMillis)
			b = wire.AppendUint(b, g.Epoch)
			b = wire.AppendUint(b, uint64(len(g.Held)))
			for _, name := range g.Held {
				b = wire.AppendString(b, name)
			}
			return wire.AppendString(b, g.Err)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			g := grantMsg{SessionID: r.Uint(), TTLMillis: r.Uint(), Epoch: r.Uint()}
			n := r.Len()
			if n > 0 {
				g.Held = make([]string, 0, n)
				for i := 0; i < n; i++ {
					g.Held = append(g.Held, r.String())
				}
			}
			g.Err = r.String()
			return g, nil
		})
	wire.RegisterMessage(tagKeepalive, keepaliveMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendUint(b, m.(keepaliveMsg).SessionID)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return keepaliveMsg{SessionID: r.Uint()}, nil
		})
	wire.RegisterMessage(tagLockReq, lockReqMsg{},
		func(b []byte, m mutex.Message) []byte {
			q := m.(lockReqMsg)
			b = wire.AppendUint(b, q.ReqID)
			return append(b, q.Op)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			q := lockReqMsg{ReqID: r.Uint(), Op: r.Byte()}
			switch q.Op {
			case opAcquire, opRelease, opCancel:
			default:
				r.Fail("invalid session lock op %d", q.Op)
			}
			return q, nil
		})
	wire.RegisterMessage(tagLockRep, lockRepMsg{},
		func(b []byte, m mutex.Message) []byte {
			p := m.(lockRepMsg)
			b = wire.AppendUint(b, p.ReqID)
			b = wire.AppendBool(b, p.OK)
			return wire.AppendString(b, p.Err)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return lockRepMsg{ReqID: r.Uint(), OK: r.Bool(), Err: r.String()}, nil
		})
	wire.RegisterMessage(tagExpire, expireMsg{},
		func(b []byte, m mutex.Message) []byte {
			x := m.(expireMsg)
			b = wire.AppendUint(b, x.SessionID)
			return wire.AppendString(b, x.Reason)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return expireMsg{SessionID: r.Uint(), Reason: r.String()}, nil
		})
	wire.RegisterMessage(tagBye, byeMsg{},
		func(b []byte, m mutex.Message) []byte {
			return wire.AppendUint(b, m.(byeMsg).SessionID)
		},
		func(r *wire.Reader) (mutex.Message, error) {
			return byeMsg{SessionID: r.Uint()}, nil
		})
}

// envelope wraps a session payload for one lock name. Clients are not
// protocol sites, so both site fields carry the None sentinel; only the
// Resource field routes.
func envelope(name string, m mutex.Message) mutex.Envelope {
	return mutex.Envelope{Resource: name, From: timestamp.None, To: timestamp.None, Msg: m}
}
