package session

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dqmx/internal/chaos"
	"dqmx/internal/core"
	"dqmx/internal/mutex"
	"dqmx/internal/obs"
	"dqmx/internal/resource"
	"dqmx/internal/transport"
)

// startArbiters builds an n-site in-process cluster (optionally under a
// chaos plan) and runs a session server bound to each of the given sites.
func startArbiters(t *testing.T, n int, sites []int, lease time.Duration, plan *chaos.Plan, sink obs.Sink) (addrs []string, srvs []*Server) {
	t.Helper()
	cluster, err := transport.NewClusterConfig(transport.ClusterConfig{
		Algorithm: core.Algorithm{},
		N:         n,
		Chaos:     plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	for _, site := range sites {
		site := site
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{
			Site: mutex.SiteID(site),
			Locks: LockerFunc(func(name string) (*resource.Lock, error) {
				return cluster.Lock(mutex.SiteID(site), name)
			}),
			Listener: ln,
			Lease:    lease,
			Sink:     sink,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		addrs = append(addrs, ln.Addr().String())
		srvs = append(srvs, srv)
	}
	return addrs, srvs
}

func dialClient(t *testing.T, addrs []string, lease time.Duration) *Client {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientConfig{Addrs: addrs, Lease: lease})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSessionAcquireRelease(t *testing.T) {
	addrs, srvs := startArbiters(t, 3, []int{0}, time.Second, nil, nil)
	c := dialClient(t, addrs, time.Second)
	if c.ID() == 0 {
		t.Fatal("no session id after Dial")
	}
	l, err := c.Lock("orders")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	// Release without a hold must report not-held, like a peer deployment.
	if err := l.Release(); !errors.Is(err, transport.ErrNotHeld) {
		t.Fatalf("double release: got %v, want ErrNotHeld", err)
	}
	// Do pairs acquire/release.
	if err := l.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	st := srvs[0].Stats()
	if st.Opened != 1 || st.Active != 1 {
		t.Fatalf("stats = %+v, want 1 opened / 1 active", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The bye is processed asynchronously server-side.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st = srvs[0].Stats()
		if st.Closed == 1 && st.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats after close = %+v, want 1 closed / 0 active", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Operations after Close fail fast.
	if err := l.Acquire(context.Background()); err == nil {
		t.Fatal("acquire on closed client succeeded")
	}
}

func TestSessionMutualExclusion(t *testing.T) {
	addrs, _ := startArbiters(t, 3, []int{0, 1}, 2*time.Second, nil, nil)
	const (
		clients = 8
		rounds  = 10
	)
	var (
		counter int // deliberately unsynchronized; the lock must protect it
		inCS    atomic.Int32
		wg      sync.WaitGroup
	)
	for i := 0; i < clients; i++ {
		// Spread clients across both arbiters.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialClient(t, []string{addrs[i%len(addrs)]}, 2*time.Second)
			l, err := c.Lock("ctr")
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				err := l.Do(context.Background(), func(context.Context) error {
					if inCS.Add(1) != 1 {
						t.Error("mutual exclusion violated")
					}
					counter++
					inCS.Add(-1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if counter != clients*rounds {
		t.Fatalf("counter = %d, want %d", counter, clients*rounds)
	}
}

func TestLeaseExpiryReclaim(t *testing.T) {
	const lease = 300 * time.Millisecond
	metrics := obs.NewMetrics()
	addrs, srvs := startArbiters(t, 3, []int{0, 1}, lease, nil, metrics.Observe)

	holder := dialClient(t, []string{addrs[0]}, lease)
	l, err := holder.Lock("r")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	waiter := dialClient(t, []string{addrs[1]}, lease)
	wl, err := waiter.Lock("r")
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		acquired <- wl.Acquire(ctx)
	}()
	// Give the waiter time to queue behind the holder.
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-acquired:
		t.Fatalf("waiter acquired while holder alive: %v", err)
	default:
	}

	// Crash the holder: no bye, no release, keepalives stop.
	start := time.Now()
	holder.Abandon()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("waiter never granted after holder crash")
	}
	elapsed := time.Since(start)
	// The bounded-reclaim guarantee: lease TTL + scanner tick + protocol
	// handoff, with generous CI slack.
	if bound := lease + 3*time.Second; elapsed > bound {
		t.Fatalf("reclaim took %v, want <= %v", elapsed, bound)
	}
	st := srvs[0].Stats()
	if st.Expired == 0 || st.Reclaimed == 0 {
		t.Fatalf("arbiter stats = %+v, want expiry + reclaim recorded", st)
	}
	snap := metrics.Snapshot()
	if snap.Sessions.Expired == 0 || snap.Sessions.LocksReclaimed == 0 {
		t.Fatalf("metrics sessions = %+v, want expiry + reclaim events", snap.Sessions)
	}
	if err := wl.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestReattachPreservesLocks(t *testing.T) {
	addrs, srvs := startArbiters(t, 3, []int{0}, time.Second, nil, nil)
	c := dialClient(t, addrs, time.Second)
	l, err := c.Lock("sticky")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	id := c.ID()

	// Cut the connection out from under the client; it must reattach to
	// the same session within the lease grace window.
	c.mu.Lock()
	sc := c.conn
	c.mu.Unlock()
	sc.c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		attached := c.conn != nil
		c.mu.Unlock()
		if attached {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reattached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.ID(); got != id {
		t.Fatalf("session id changed across reattach: %d -> %d", id, got)
	}
	// The lock survived: release must succeed (not ErrLockLost).
	if err := l.Release(); err != nil {
		t.Fatalf("release after reattach: %v", err)
	}
	if st := srvs[0].Stats(); st.Attaches < 2 {
		t.Fatalf("stats = %+v, want >= 2 attaches", st)
	}
}

func TestFailoverToSecondArbiter(t *testing.T) {
	addrs, srvs := startArbiters(t, 3, []int{0, 1}, 500*time.Millisecond, nil, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientConfig{Addrs: addrs, Lease: 500 * time.Millisecond, FailoverWindow: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	l, err := c.Lock("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	oldID := c.ID()

	// Kill the arbiter the client is attached to. Its orderly shutdown
	// releases the session's locks; the client must fail over to the
	// second arbiter with a fresh session.
	srvs[0].Close()

	deadline := time.Now().Add(8 * time.Second)
	for c.ID() == oldID || c.ID() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("client never failed over (id still %d)", c.ID())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The old grant is void: Release reports the loss, then the handle is
	// reusable through the new arbiter.
	if err := l.Release(); !errors.Is(err, resource.ErrLockLost) {
		t.Fatalf("release after failover: got %v, want ErrLockLost", err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("re-acquire through new arbiter: %v", err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestTryAcquireContention(t *testing.T) {
	addrs, _ := startArbiters(t, 3, []int{0}, time.Second, nil, nil)
	a := dialClient(t, addrs, time.Second)
	b := dialClient(t, addrs, time.Second)
	la, err := a.Lock("t")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := b.Lock("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	ok, err := lb.TryAcquire(ctx)
	cancel()
	if err != nil || ok {
		t.Fatalf("TryAcquire on held lock = (%v, %v), want (false, nil)", ok, err)
	}
	if err := la.Release(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	ok, err = lb.TryAcquire(ctx)
	cancel()
	if err != nil || !ok {
		t.Fatalf("TryAcquire on free lock = (%v, %v), want (true, nil)", ok, err)
	}
	if err := lb.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPreambleRejected(t *testing.T) {
	addrs, srvs := startArbiters(t, 3, []int{0}, time.Second, nil, nil)
	nc, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET / HTTP/1.0\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	if _, err := nc.Read(buf); err == nil {
		// Any bytes back would mean the server spoke to a non-client.
		t.Fatal("server answered a bad preamble")
	}
	// The server survives hostile connections.
	c := dialClient(t, addrs, time.Second)
	if c.ID() == 0 {
		t.Fatal("no session after hostile connection")
	}
	if st := srvs[0].Stats(); st.Opened != 1 {
		t.Fatalf("stats = %+v, want exactly the one real session", st)
	}
}

// TestLeaseExpiryMidHold pins the ErrLockLost contract from the holder's
// side: a client whose lease expires while it still believes it holds a
// lock must see resource.ErrLockLost on Release, a strictly larger fencing
// token on the replacement session, and a handle that stays usable. The
// client's keepalives are configured far apart so the lease runs out with
// the client alive and attached — the arbiter expires it mid-hold.
func TestLeaseExpiryMidHold(t *testing.T) {
	const lease = 300 * time.Millisecond
	addrs, srvs := startArbiters(t, 3, []int{0}, lease, nil, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c, err := Dial(ctx, ClientConfig{
		Addrs: addrs,
		Lease: lease,
		// Never renew: the first keepalive would land after the lease is
		// long gone, so the arbiter must expire the session mid-hold.
		Keepalive:      time.Hour,
		FailoverWindow: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	oldID, oldFence := c.ID(), c.Fence()
	if oldFence == 0 {
		t.Fatal("no fencing token after Dial")
	}
	deadline := c.LeaseDeadline()
	if deadline.IsZero() || !deadline.After(time.Now()) {
		t.Fatalf("lease deadline %v, want a future instant", deadline)
	}
	l, err := c.Lock("held")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Wait out the expiry: the arbiter reclaims the lock and pushes an
	// expire notice; the client re-dials into a fresh session.
	waitUntil := time.Now().Add(15 * time.Second)
	for c.ID() == oldID || c.ID() == 0 {
		if time.Now().After(waitUntil) {
			t.Fatalf("session never expired (id still %d)", c.ID())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if time.Now().Before(deadline) {
		t.Fatalf("session expired before the advertised LeaseDeadline %v", deadline)
	}
	if st := srvs[0].Stats(); st.Expired == 0 || st.Reclaimed == 0 {
		t.Fatalf("arbiter stats = %+v, want the expiry + reclaim recorded", st)
	}

	// The hold is gone: Release reports it, exactly once.
	if err := l.Release(); !errors.Is(err, resource.ErrLockLost) {
		t.Fatalf("release after mid-hold expiry: got %v, want ErrLockLost", err)
	}
	if err := l.Release(); !errors.Is(err, transport.ErrNotHeld) {
		t.Fatalf("second release: got %v, want ErrNotHeld", err)
	}

	// The replacement session carries a strictly larger fencing token and a
	// fresh lease bound; the handle is reusable.
	if newFence := c.Fence(); newFence <= oldFence {
		t.Fatalf("fence did not advance across expiry: %d -> %d", oldFence, newFence)
	}
	if nd := c.LeaseDeadline(); !nd.After(deadline) {
		t.Fatalf("lease deadline did not advance: %v -> %v", deadline, nd)
	}
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("re-acquire after expiry: %v", err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseDeadlineAdvances pins the keepalive side of LeaseDeadline: with
// renewals flowing, the echoed keepalives keep pushing the conservative
// bound forward, so a long-lived client never sees its own deadline pass.
func TestLeaseDeadlineAdvances(t *testing.T) {
	const lease = 300 * time.Millisecond
	addrs, _ := startArbiters(t, 3, []int{0}, lease, nil, nil)
	c := dialClient(t, addrs, lease)
	first := c.LeaseDeadline()
	if first.IsZero() {
		t.Fatal("no lease deadline after Dial")
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.LeaseDeadline() == first {
		if time.Now().After(deadline) {
			t.Fatal("lease deadline never advanced under keepalives")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if now := time.Now(); now.After(c.LeaseDeadline()) {
		t.Fatalf("deadline %v already passed at %v despite live keepalives", c.LeaseDeadline(), now)
	}
	// Same session throughout: the fence must not have moved.
	if id, fence := c.ID(), c.Fence(); id == 0 || fence == 0 {
		t.Fatalf("session (%d) / fence (%d) lost under keepalives", id, fence)
	}
}

// TestChaosLeaseRecoveryComposition is the lease-expiry ⇄ §6 recovery
// composition drill: under a seeded chaos fabric (drops + delay — the
// reliable sublayer heals the loss), a client crashes mid-hold and a waiter
// on another arbiter must be re-granted within the lease + recovery bound.
// Swept over several seeds; `make race` runs it under -race.
func TestChaosLeaseRecoveryComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short")
	}
	const lease = 250 * time.Millisecond
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := &chaos.Plan{
				Seed:     seed,
				Drop:     0.05,
				MaxDelay: 2 * time.Millisecond,
			}
			addrs, _ := startArbiters(t, 3, []int{0, 1}, lease, plan, nil)
			holder := dialClient(t, []string{addrs[0]}, lease)
			hl, err := holder.Lock("shared")
			if err != nil {
				t.Fatal(err)
			}
			if err := hl.Acquire(context.Background()); err != nil {
				t.Fatal(err)
			}
			waiter := dialClient(t, []string{addrs[1]}, lease)
			wl, err := waiter.Lock("shared")
			if err != nil {
				t.Fatal(err)
			}
			acquired := make(chan error, 1)
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				defer cancel()
				acquired <- wl.Acquire(ctx)
			}()
			time.Sleep(50 * time.Millisecond)
			start := time.Now()
			holder.Abandon()
			select {
			case err := <-acquired:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(20 * time.Second):
				t.Fatal("waiter never granted after crash under chaos")
			}
			if elapsed, bound := time.Since(start), lease+5*time.Second; elapsed > bound {
				t.Fatalf("reclaim under chaos took %v, want <= %v", elapsed, bound)
			}
			if err := wl.Release(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
