package modelcheck_test

import (
	"errors"
	"fmt"
	"testing"

	"dqmx/internal/chaos"
	"dqmx/internal/core"
	"dqmx/internal/coterie"
	"dqmx/internal/membership"
	"dqmx/internal/modelcheck"
	"dqmx/internal/mutex"
)

// run executes one exhaustive configuration and fails the test on any
// violation, rendering the replayable counterexample.
func run(t *testing.T, name string, cfg modelcheck.Config) modelcheck.Result {
	t.Helper()
	res, err := modelcheck.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Violation != nil {
		t.Fatalf("%s:\n%s", name, res.Violation)
	}
	if !res.Complete {
		t.Fatalf("%s: exploration truncated by MaxDepth", name)
	}
	if res.Terminals == 0 {
		t.Fatalf("%s: no terminal states reached", name)
	}
	t.Logf("%s: %d distinct states, %d terminals, depth %d — all invariants hold",
		name, res.States, res.Terminals, res.Depth)
	return res
}

// checked builds a config over the given coterie with the full default
// invariant set plus the paper's message bound derived from the assignment.
func checked(t *testing.T, cons coterie.Construction, n int) modelcheck.Config {
	t.Helper()
	assign, err := cons.Assign(n)
	if err != nil {
		t.Fatal(err)
	}
	b := modelcheck.BoundsFor(assign)
	return modelcheck.Config{
		Algorithm: core.Algorithm{Construction: cons},
		N:         n,
		Bound:     &b,
	}
}

// TestExhaustiveSmall covers every delivery/request/exit interleaving of the
// fault-free N=3 configurations on both coterie shapes. The grid run
// exercises the transfer/inquire/yield machinery (site 0's quorum spans all
// three sites).
func TestExhaustiveSmall(t *testing.T) {
	cfg := checked(t, coterie.Majority{}, 3)
	cfg.MaxStates = 500_000
	run(t, "majority-3", cfg)

	cfg = checked(t, coterie.Grid{}, 3)
	cfg.MaxStates = 2_000_000
	run(t, "grid-3", cfg)
}

// TestExhaustiveCrashRecovery enumerates every schedule of the N=3 majority
// configuration with one crash choice at every step: the §6 recovery path —
// failure notifications interleaved with protocol traffic, quorum
// reconstruction, dead-holder regrants, and lost in-flight messages from the
// victim — must keep every invariant, including terminal deadlock freedom
// (a single crash leaves a live majority quorum).
func TestExhaustiveCrashRecovery(t *testing.T) {
	cfg := checked(t, coterie.Majority{}, 3)
	cfg.Crashes = 1
	cfg.MaxStates = 5_000_000
	run(t, "majority-3+crash", cfg)
}

// TestExhaustiveFour covers the fault-free N=4 majority configuration
// (quorums of size 3, so every request crosses overlapping arbiters). Two
// requesters fit the full invariant set including the message bound; three
// requesters drop the bound counters from the canonical state (they explode
// the space: ~200k states with them vs ~112k without at three requesters,
// and all four requesters exceed 20M states either way).
func TestExhaustiveFour(t *testing.T) {
	cfg := checked(t, coterie.Majority{}, 4)
	cfg.Requesters = []mutex.SiteID{0, 1}
	cfg.MaxStates = 500_000
	run(t, "majority-4(2 requesters)", cfg)

	if testing.Short() {
		return
	}
	cfg = checked(t, coterie.Majority{}, 4)
	cfg.Requesters = []mutex.SiteID{0, 1, 2}
	cfg.Bound = nil
	cfg.MaxStates = 1_000_000
	run(t, "majority-4(3 requesters)", cfg)
}

// TestExhaustiveFive covers N=5 fault-free on the tree coterie (the paper's
// K=log n shape) and the majority coterie, with reduced requester sets to
// keep the spaces enumerable; the idle sites still arbitrate every request.
func TestExhaustiveFive(t *testing.T) {
	cfg := checked(t, coterie.Tree{}, 5)
	cfg.Requesters = []mutex.SiteID{0, 2, 4}
	cfg.MaxStates = 500_000
	run(t, "tree-5(3 requesters)", cfg)

	cfg = checked(t, coterie.Majority{}, 5)
	cfg.Requesters = []mutex.SiteID{0, 3}
	cfg.MaxStates = 500_000
	run(t, "majority-5(2 requesters)", cfg)
}

// TestExhaustiveTwoRounds lets sites run two CS executions issued at
// nondeterministic times — the space where the early-release and transfer
// races appear. Skipped in -short; `make modelcheck` runs it.
func TestExhaustiveTwoRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("two-round model checking skipped in -short mode")
	}
	cfg := checked(t, coterie.Majority{}, 3)
	cfg.PerSite = 2
	cfg.Bound = nil // counters inflate the two-round space ~4x
	cfg.MaxStates = 1_000_000
	run(t, "majority-3×2", cfg)

	cfg = checked(t, coterie.Grid{}, 3)
	cfg.PerSite = 2
	cfg.Requesters = []mutex.SiteID{0, 2}
	cfg.MaxStates = 1_000_000
	run(t, "grid-3×2(2 requesters)", cfg)
}

// handoverConfig builds the exhaustive membership-switch configuration: a
// majority cluster growing from `from` to `to` sites via the joint-quorum
// handover, explored over the joint span with the given requesters.
func handoverConfig(t *testing.T, from, to int, requesters []mutex.SiteID) modelcheck.Config {
	t.Helper()
	old, err := membership.NewConfig(0, coterie.Majority{}, from)
	if err != nil {
		t.Fatal(err)
	}
	next, err := membership.NewConfig(1, coterie.Majority{}, to)
	if err != nil {
		t.Fatal(err)
	}
	h, err := membership.PlanHandover(old, next)
	if err != nil {
		t.Fatal(err)
	}
	h.OldCons, h.NewCons = coterie.Majority{}, coterie.Majority{}
	return modelcheck.Config{
		Algorithm:  core.Algorithm{Construction: coterie.Majority{}},
		N:          h.JointN(),
		Requesters: requesters,
		Handover:   h,
	}
}

// TestExhaustiveHandover proves the reconfiguration safe by enumeration: a
// majority-3 cluster grows to majority-4 while sites contend, and every
// interleaving of protocol traffic with the per-site joint and final
// membership applies is explored. At most one site holds the CS in every
// reachable state — entries granted under the old coterie, the joint phase,
// and the new coterie all exclude each other — timestamp order holds for
// unwithdrawn settled waves, and every terminal state has the switch
// complete with all requests served (the settle barrier never wedges).
//
// The two-requester spaces are the exhaustive budget: adding a third
// requester or a crash choice multiplies the handover interleavings past
// any practical state budget (tens of millions of states without
// converging). Crash-during-handover is covered by the randomized chaos
// archetypes instead (TestChaosConformanceReconfigure* in
// internal/chaos/sweep), which drive the same JointAvoiding rebuild path
// under load with seeded schedules.
func TestExhaustiveHandover(t *testing.T) {
	// The joiner plus one original member contend across the switch.
	cfg := handoverConfig(t, 3, 4, []mutex.SiteID{0, 3})
	cfg.MaxStates = 2_000_000
	run(t, "handover-3to4(2 requesters)", cfg)
}

// TestExhaustiveHandoverShrink covers the other direction: majority-4 down
// to majority-3, where the final swap is withdraw-only (the new quorum is a
// subset of the joint req_set) and the departing site keeps its joint
// req_set through the drain — the withdrawn-wave accounting must keep the
// order invariant sound.
func TestExhaustiveHandoverShrink(t *testing.T) {
	// The departing site and one survivor contend across the switch.
	cfg := handoverConfig(t, 4, 3, []mutex.SiteID{0, 3})
	cfg.MaxStates = 2_000_000
	run(t, "handover-4to3(2 requesters)", cfg)
}

// TestBoundsMatchChaos pins BoundsFor to the chaos checker's MessageBounds:
// the two verification pillars must assert the same envelope.
func TestBoundsMatchChaos(t *testing.T) {
	for _, tc := range []struct {
		cons coterie.Construction
		n    int
	}{
		{coterie.Majority{}, 3},
		{coterie.Majority{}, 5},
		{coterie.Grid{}, 9},
		{coterie.Tree{}, 7},
	} {
		assign, err := tc.cons.Assign(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := chaos.MessageBounds(assign)
		b := modelcheck.BoundsFor(assign)
		if b.Lo != lo || b.Hi != hi {
			t.Errorf("%s-%d: BoundsFor=[%v,%v], chaos.MessageBounds=[%v,%v]",
				tc.cons.Name(), tc.n, b.Lo, b.Hi, lo, hi)
		}
	}
}

// TestCounterexampleReplay verifies the counterexample machinery end to end
// with a deliberately broken invariant ("no site ever enters the CS"): the
// violation must carry the shortest trace that enters a CS — request, deliver
// the request, deliver the reply — and Replay must reproduce exactly the same
// violation from the recorded choices.
func TestCounterexampleReplay(t *testing.T) {
	broken := modelcheck.NewInvariant("no-entry",
		func(pre *modelcheck.State, act modelcheck.Action, post *modelcheck.State) error {
			if s := post.Entered(); s != -1 {
				return fmt.Errorf("site %d entered the CS", s)
			}
			return nil
		}, nil)
	cfg := modelcheck.Config{
		Algorithm:  core.Algorithm{Construction: coterie.Majority{}},
		N:          3,
		Invariants: []modelcheck.Invariant{broken},
		MaxStates:  100_000,
	}
	res, err := modelcheck.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("broken invariant produced no violation")
	}
	v := res.Violation
	if v.Invariant != "no-entry" {
		t.Fatalf("violated invariant = %q, want no-entry", v.Invariant)
	}
	// BFS yields a minimal counterexample: issuing one request and delivering
	// the request and reply along site 0's two-member quorum is the shortest
	// possible path into a CS.
	if len(v.Trace) != 3 {
		t.Fatalf("counterexample not minimal: %d choices\n%s", len(v.Trace), v)
	}
	if v.Dump == "" {
		t.Fatal("violation carries no state dump")
	}

	replayed, log, err := modelcheck.Replay(cfg, v.Trace)
	if err != nil {
		t.Fatalf("replay: %v (log: %v)", err, log)
	}
	if replayed == nil {
		t.Fatalf("replay of the counterexample ran clean; trace:\n%s", v)
	}
	if replayed.Invariant != v.Invariant || replayed.Msg != v.Msg {
		t.Fatalf("replay reproduced %q/%q, want %q/%q", replayed.Invariant, replayed.Msg, v.Invariant, v.Msg)
	}
	if len(log) != len(v.Trace) {
		t.Fatalf("replay log has %d steps for a %d-choice trace", len(log), len(v.Trace))
	}
}

// TestStateBudget pins the budget contract: a cap below the space size must
// abort with ErrStateBudget rather than run unbounded.
func TestStateBudget(t *testing.T) {
	cfg := modelcheck.Config{
		Algorithm: core.Algorithm{Construction: coterie.Majority{}},
		N:         3,
		MaxStates: 10,
	}
	_, err := modelcheck.Run(cfg)
	if !errors.Is(err, modelcheck.ErrStateBudget) {
		t.Fatalf("got %v, want ErrStateBudget", err)
	}
}

// TestDFSMatchesBFS: both search orders must visit the same state space.
func TestDFSMatchesBFS(t *testing.T) {
	cfg := checked(t, coterie.Majority{}, 3)
	cfg.MaxStates = 500_000
	bfs := run(t, "bfs", cfg)
	cfg.DFS = true
	dfs := run(t, "dfs", cfg)
	if bfs.States != dfs.States || bfs.Terminals != dfs.Terminals {
		t.Fatalf("bfs explored %d/%d, dfs %d/%d", bfs.States, bfs.Terminals, dfs.States, dfs.Terminals)
	}
}
