// Package modelcheck exhaustively verifies small protocol configurations by
// enumerating every reachable state of the per-site state machines under
// per-channel-FIFO message delivery.
//
// The explorer owns a model of the whole system — one Site state machine per
// site, one FIFO queue per directed (from, to) channel, the identity of the
// current CS holder, and each site's remaining CS budget — and at every step
// branches over the enabled nondeterministic choices:
//
//   - deliver the head of any non-empty channel;
//   - let an idle site issue its next request;
//   - let the current holder exit the critical section;
//   - crash a live site (bounded by Config.Crashes): its in-flight inbound
//     messages are lost, later messages addressed to it are dropped, and every
//     survivor receives a §6 failure notification on its own detector channel,
//     so notifications interleave freely with protocol traffic and with each
//     other — exactly the races the recovery protocol must survive;
//   - with Config.Handover, step one site through the joint-quorum membership
//     switch (internal/membership): apply-joint at any point, apply-final once
//     the settle barrier holds — so the safety invariant is proven across
//     every interleaving of the epoch switch with protocol traffic.
//
// States are deduplicated by a canonical serialization (Site.CanonicalState
// plus the explorer's own bookkeeping), so the search covers the full state
// space up to that equivalence rather than a tree of runs. Invariants are
// pluggable (see Invariant) and mirror the chaos checker's conformance rules;
// a violation carries the exact choice sequence that reached it, replayable
// with Replay, plus a per-site state dump.
//
// This is the repository's second verification pillar next to the chaos
// sweep: chaos samples deep schedules on big topologies under a lossy
// transport, the model checker proves every schedule of a small fault-budget
// configuration over the reliable-FIFO model the paper assumes.
package modelcheck

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"dqmx/internal/coterie"
	"dqmx/internal/membership"
	"dqmx/internal/mutex"
)

// Site is the contract a protocol state machine must satisfy to be model
// checked: the usual mutex driver surface plus the cloning, canonicalization,
// and diagnostic seams (core.Site implements all of them).
type Site interface {
	mutex.Site
	mutex.TimestampedSite
	// CloneForCheck deep-copies the machine so the explorer can branch.
	CloneForCheck() mutex.Site
	// CanonicalState serializes every behaviour-relevant field; states with
	// equal strings must react identically to identical future inputs.
	CanonicalState() string
	// DebugString renders the state for counterexample dumps.
	DebugString() string
}

// Bound is the per-CS average message envelope asserted on fault-free
// terminal states, the paper's 3(K−1)..6(K−1).
type Bound struct {
	Lo, Hi float64
}

// BoundsFor derives the envelope from a coterie assignment, mirroring
// chaos.MessageBounds (a test pins the two functions together): Kmin and
// Kmax are the smallest and largest quorum sizes.
func BoundsFor(a *coterie.Assignment) Bound {
	minK, maxK := 0, 0
	for _, q := range a.Quorums {
		if k := len(q); minK == 0 || k < minK {
			minK = k
		}
		if k := len(q); k > maxK {
			maxK = k
		}
	}
	if minK < 1 {
		return Bound{}
	}
	return Bound{Lo: 3 * float64(minK-1), Hi: 6 * float64(maxK-1)}
}

// Config describes one exhaustive run.
type Config struct {
	// Algorithm builds the N site machines; every site must implement the
	// package's Site interface.
	Algorithm mutex.Algorithm
	// N is the number of sites.
	N int
	// PerSite is how many CS executions each requester issues (default 1).
	PerSite int
	// Requesters limits which sites issue requests (nil = all N). Shrinking
	// the requester set is how larger-N configurations stay enumerable: the
	// remaining sites still arbitrate, so quorum traffic covers them.
	Requesters []mutex.SiteID
	// Crashes is the crash-choice budget: along any one run at most this
	// many sites fail. Keep it below the coterie's availability margin
	// (majority-3 tolerates 1) or blocked requesters are reported as
	// deadlocks — which, without a live quorum, they truly are.
	Crashes int
	// CrashSites limits crash victims (nil = any live site).
	CrashSites []mutex.SiteID
	// MaxStates caps the visited-state count; exceeding it aborts the run
	// with ErrStateBudget (0 = unlimited). It is the CI-time guard: size it
	// so the configuration is known to fit.
	MaxStates int
	// MaxDepth caps the choice-sequence length; deeper paths are truncated
	// and the Result is marked incomplete (0 = unbounded).
	MaxDepth int
	// DFS switches the search order from breadth-first (default; finds
	// minimal counterexamples) to depth-first (smaller frontier on soak-size
	// spaces).
	DFS bool
	// Invariants replaces the default invariant set (nil = Defaults()).
	Invariants []Invariant
	// Bound, when non-nil, additionally asserts the per-CS message envelope
	// on fault-free terminal states. The message and exit counters then
	// become part of the canonical state, so runs that differ only in cost
	// are explored separately — the state space grows accordingly.
	Bound *Bound
	// Handover, when non-nil, overlays an online membership switch
	// (internal/membership) on the exploration. N must equal
	// Handover.JointN(); sites present in the old configuration start on
	// their old req_sets, joining sites are born joint (mirroring the live
	// path, where grow() precedes the joint sweep). Two extra per-site
	// choices drive the switch: apply-joint installs a site's joint req_set
	// at any point, and apply-final — gated on every live site being joint
	// with its swap settled, the live settle barrier — installs the new
	// configuration's req_set on sites it retains. Departing sites keep
	// their joint req_sets, as the live drain does. The applies count as
	// protocol choices, so terminal states exist only after the switch
	// completes and the deadlock invariant asserts post-switch liveness.
	// Bound must be nil: handover traffic (withdrawals, joint requests)
	// legitimately exceeds the paper's fault-free envelope.
	Handover *membership.Handover
}

// ErrStateBudget reports that the state space outgrew Config.MaxStates.
var ErrStateBudget = errors.New("modelcheck: state budget exceeded")

// Result summarizes a completed exploration.
type Result struct {
	// States is the number of distinct canonical states visited.
	States int
	// Terminals counts distinct quiescent states (no deliver, request, or
	// exit choice enabled).
	Terminals int
	// Depth is the longest explored choice sequence.
	Depth int
	// Complete is false when MaxDepth truncated at least one path.
	Complete bool
	// Violation is the first invariant violation found, nil when the run is
	// clean. A violating run stops at the violation.
	Violation *Violation
}

// channel identifies one directed FIFO message queue. Detector channels use
// a negative from (see detectorFrom) so each survivor's failure notification
// travels alone and interleaves freely.
type channel struct{ from, to mutex.SiteID }

// detectorFrom is the synthetic origin of the failure notification delivered
// to survivors after victim crashes: one distinct channel per (victim,
// survivor) pair.
func detectorFrom(victim mutex.SiteID) mutex.SiteID { return -2 - victim }

// State is one node of the explored state space. Invariants read it through
// the accessor methods; all mutation happens inside the explorer.
type State struct {
	sites       []Site
	chans       map[channel][]mutex.Envelope
	inCS        mutex.SiteID // -1 when the CS is free
	reqs        []int        // CS executions each site still has to issue
	crashed     []bool
	crashesLeft int
	sends       uint64 // network protocol messages sent (excludes failure notifications)
	exits       uint64 // completed CS executions

	// settled[j*n+i] records that site j's request wave was fully delivered
	// ("settled") before site i issued its current request — the premise of
	// the chaos checker's timestamp-order rule. Maintained by the explorer,
	// consulted by the order invariant, part of the canonical state.
	settled []bool

	// Handover bookkeeping (nil without Config.Handover): h is the shared
	// immutable plan, member[i] is site i's progress through it — 0 on the
	// old req_set, 1 joint, 2 final. withdrawn[i] marks site i's current
	// request wave as withdrawn (a release sent while still waiting — a
	// membership swap pulling the request from departing arbiters): the
	// freed arbiter may grant anyone, so the wave never counts as settled
	// again; the flag clears when the site issues its next request. It
	// mirrors the chaos checker's withdrawn flag and is only tracked in
	// handover runs — elsewhere withdrawals only happen on §6 recovery,
	// where the order invariant is exempt anyway.
	h         *membership.Handover
	member    []uint8
	withdrawn []bool

	// Transition transients (not part of the canonical state): the site that
	// entered the CS during the last applied action, and the pair of holders
	// of a double entry. Violations abort the run, so they never need to
	// survive deduplication.
	entered mutex.SiteID
	dup     *[2]mutex.SiteID
}

// N returns the number of sites.
func (st *State) N() int { return len(st.sites) }

// Holder returns the current CS holder, -1 when the CS is free.
func (st *State) Holder() mutex.SiteID { return st.inCS }

// SiteAt returns site i's state machine (read-only for invariants).
func (st *State) SiteAt(i mutex.SiteID) Site { return st.sites[i] }

// Crashed reports whether site i has crashed.
func (st *State) Crashed(i mutex.SiteID) bool { return st.crashed[i] }

// Faulty reports whether any site has crashed.
func (st *State) Faulty() bool {
	for _, c := range st.crashed {
		if c {
			return true
		}
	}
	return false
}

// Remaining returns site i's outstanding CS budget.
func (st *State) Remaining(i mutex.SiteID) int { return st.reqs[i] }

// Sends returns the network protocol messages sent so far along this run
// (self-addressed envelopes and failure notifications excluded, matching the
// paper's accounting).
func (st *State) Sends() uint64 { return st.sends }

// Exits returns the CS executions completed so far along this run.
func (st *State) Exits() uint64 { return st.exits }

// Entered returns the site that acquired the CS during the transition that
// produced this state, -1 when none did.
func (st *State) Entered() mutex.SiteID { return st.entered }

// DoubleEntry returns both holders when the last transition produced a
// second simultaneous CS entry, or nil.
func (st *State) DoubleEntry() *[2]mutex.SiteID { return st.dup }

// SettledBefore reports whether site j's request wave had settled before
// site i issued its current request.
func (st *State) SettledBefore(j, i mutex.SiteID) bool {
	return st.settled[int(j)*len(st.sites)+int(i)]
}

// explorer carries the per-run configuration shared by all states.
type explorer struct {
	cfg        Config
	invariants []Invariant
	counters   bool // message counters are part of the canonical state
	requester  []bool
	crashable  []bool
}

func newExplorer(cfg Config) (*explorer, error) {
	if cfg.Algorithm == nil {
		return nil, errors.New("modelcheck: Config.Algorithm is required")
	}
	if cfg.N < 1 {
		return nil, errors.New("modelcheck: Config.N must be positive")
	}
	if cfg.PerSite == 0 {
		cfg.PerSite = 1
	}
	ex := &explorer{
		cfg:       cfg,
		counters:  cfg.Bound != nil,
		requester: idSet(cfg.N, cfg.Requesters),
		crashable: idSet(cfg.N, cfg.CrashSites),
	}
	ex.invariants = cfg.Invariants
	if ex.invariants == nil {
		ex.invariants = Defaults()
	}
	if cfg.Bound != nil {
		ex.invariants = append(append([]Invariant(nil), ex.invariants...), BoundInvariant(*cfg.Bound))
	}
	if h := cfg.Handover; h != nil {
		if err := h.Validate(); err != nil {
			return nil, err
		}
		if cfg.N != h.JointN() {
			return nil, fmt.Errorf("modelcheck: Config.N = %d but the handover spans %d sites", cfg.N, h.JointN())
		}
		if cfg.Bound != nil {
			return nil, errors.New("modelcheck: Bound cannot be asserted across a handover")
		}
	}
	return ex, nil
}

func idSet(n int, ids []mutex.SiteID) []bool {
	set := make([]bool, n)
	if ids == nil {
		for i := range set {
			set[i] = true
		}
		return set
	}
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// initial builds the start state: all sites idle, all channels empty.
func (ex *explorer) initial() (*State, error) {
	raw, err := ex.cfg.Algorithm.NewSites(ex.cfg.N)
	if err != nil {
		return nil, err
	}
	st := &State{
		sites:   make([]Site, len(raw)),
		chans:   make(map[channel][]mutex.Envelope),
		inCS:    -1,
		reqs:    make([]int, len(raw)),
		crashed: make([]bool, len(raw)),
		settled: make([]bool, len(raw)*len(raw)),
		entered: -1,
	}
	st.crashesLeft = ex.cfg.Crashes
	for i, s := range raw {
		ms, ok := s.(Site)
		if !ok {
			return nil, fmt.Errorf("modelcheck: site %d (%T) does not implement the model-checking seams", i, s)
		}
		st.sites[i] = ms
		if ex.requester[i] {
			st.reqs[i] = ex.cfg.PerSite
		}
	}
	if h := ex.cfg.Handover; h != nil {
		st.h = h
		st.member = make([]uint8, len(raw))
		st.withdrawn = make([]bool, len(raw))
		oldN := h.Old.N()
		for i := range st.sites {
			id := mutex.SiteID(i)
			rec, ok := st.sites[i].(mutex.Reconfigurable)
			if !ok {
				return nil, fmt.Errorf("modelcheck: site %d (%T) is not reconfigurable", i, st.sites[i])
			}
			if i < oldN {
				// An original member starts on its pure old-epoch req_set.
				st.route(id, rec.SetMembership(h.JointN(),
					[]mutex.SiteID(h.Old.Coterie.Quorum(id)),
					stableAvoid(h.OldCons, oldN, id),
					uint64(membership.StableStage(h.Old.Epoch))))
			} else {
				// A joiner is born joint: the live grow() wires it before the
				// joint sweep, so it never runs a pure old- or new-epoch quorum.
				st.route(id, rec.SetMembership(h.JointN(),
					[]mutex.SiteID(h.JointQuorum(id)),
					jointAvoid(h, id),
					uint64(membership.JointStage(h.Old.Epoch))))
				st.member[i] = 1
			}
		}
	}
	return st, nil
}

// stableAvoid adapts a construction's §6 QuorumAvoiding for a stable phase
// of a handover run to the Reconfigurable hook shape; nil cons means no
// recovery (the site keeps its quorum on a crash — safety over progress).
func stableAvoid(cons coterie.Construction, n int, id mutex.SiteID) func(map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
	if cons == nil {
		return nil
	}
	return func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
		q, err := cons.QuorumAvoiding(n, id, down)
		if err != nil {
			return nil, false
		}
		return q, true
	}
}

// jointAvoid adapts Handover.JointAvoiding the same way: a crash during the
// joint phase must rebuild onto a req_set that still embeds a quorum of each
// coterie.
func jointAvoid(h *membership.Handover, id mutex.SiteID) func(map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
	return func(down map[mutex.SiteID]bool) ([]mutex.SiteID, bool) {
		q, err := h.JointAvoiding(id, down)
		if err != nil {
			return nil, false
		}
		return q, true
	}
}

// clone deep-copies a state. Crashed sites' machines are shared: they never
// step again, so their memory is immutable.
func (st *State) clone() *State {
	c := &State{
		sites:       make([]Site, len(st.sites)),
		chans:       make(map[channel][]mutex.Envelope, len(st.chans)),
		inCS:        st.inCS,
		reqs:        append([]int(nil), st.reqs...),
		crashed:     append([]bool(nil), st.crashed...),
		crashesLeft: st.crashesLeft,
		sends:       st.sends,
		exits:       st.exits,
		settled:     append([]bool(nil), st.settled...),
		h:           st.h,
		member:      append([]uint8(nil), st.member...),
		withdrawn:   append([]bool(nil), st.withdrawn...),
		entered:     -1,
	}
	for i, s := range st.sites {
		if st.crashed[i] {
			c.sites[i] = s
			continue
		}
		c.sites[i] = s.CloneForCheck().(Site)
	}
	for k, v := range st.chans {
		c.chans[k] = append([]mutex.Envelope(nil), v...)
	}
	return c
}

// route applies a state-machine output: self-addressed envelopes are
// delivered synchronously (as every driver does), remote ones join their
// FIFO channel unless the receiver has crashed.
func (st *State) route(origin mutex.SiteID, out mutex.Output) {
	if out.Entered {
		st.noteEntered(origin)
	}
	pending := out.Send
	for len(pending) > 0 {
		env := pending[0]
		pending = pending[1:]
		if env.From >= 0 && env.Msg.Kind() == mutex.KindRequest {
			// A (re)opened request wave: the sender's settled-before facts
			// lapse, mirroring the chaos checker resetting its settle point.
			st.clearSettledRow(env.From)
		}
		if st.withdrawn != nil && env.From >= 0 && env.Msg.Kind() == mutex.KindRelease && st.sites[env.From].Pending() {
			// A release sent while still waiting is a withdrawal: the freed
			// arbiter may grant anyone, so the sender's order guarantee is
			// void for this wave. Sticky (not just a row clear) because a swap
			// onto a subset of the current req_set re-sends nothing, so the
			// wave would otherwise read as settled again at the next request.
			st.withdrawn[env.From] = true
			st.clearSettledRow(env.From)
		}
		if env.To == env.From {
			next := st.sites[env.To].Deliver(env)
			if next.Entered {
				st.noteEntered(env.To)
			}
			pending = append(pending, next.Send...)
			continue
		}
		if st.crashed[env.To] {
			continue // the receiver is dead; the message is lost
		}
		st.chans[channel{env.From, env.To}] = append(st.chans[channel{env.From, env.To}], env)
		if env.Msg.Kind() != mutex.KindFailure {
			st.sends++
		}
	}
}

func (st *State) noteEntered(i mutex.SiteID) {
	if st.inCS != -1 && st.inCS != i {
		prev := st.inCS
		st.dup = &[2]mutex.SiteID{prev, i}
	}
	st.inCS = i
	st.entered = i
	st.clearSettledRow(i)
	st.clearSettledCol(i)
}

func (st *State) clearSettledRow(j mutex.SiteID) {
	n := len(st.sites)
	for i := 0; i < n; i++ {
		st.settled[int(j)*n+i] = false
	}
}

func (st *State) clearSettledCol(i mutex.SiteID) {
	n := len(st.sites)
	for j := 0; j < n; j++ {
		st.settled[j*n+int(i)] = false
	}
}

// waveSettled reports whether site j's current request wave has been fully
// delivered: j is waiting, the wave was not withdrawn from any arbiter, and
// no request envelope from j is in flight.
func (st *State) waveSettled(j mutex.SiteID) bool {
	if !st.sites[j].Pending() {
		return false
	}
	if st.withdrawn != nil && st.withdrawn[j] {
		return false
	}
	for k, q := range st.chans {
		if k.from != j {
			continue
		}
		for _, env := range q {
			if env.Msg.Kind() == mutex.KindRequest {
				return false
			}
		}
	}
	return true
}

// apply executes one action in place and returns a short description of what
// was delivered (for replay logs).
func (st *State) apply(a Action) (string, error) {
	st.entered = -1
	st.dup = nil
	switch a.Kind {
	case ActDeliver:
		key := channel{a.From, a.To}
		q := st.chans[key]
		if len(q) == 0 {
			return "", fmt.Errorf("modelcheck: %v: channel empty", a)
		}
		env := q[0]
		if len(q) == 1 {
			delete(st.chans, key)
		} else {
			st.chans[key] = q[1:]
		}
		if fm, ok := env.Msg.(mutex.FailureMsg); ok {
			// The transport severs the dead peer's streams (PeerFailed) before
			// the notification reaches the protocol, so nothing from the victim
			// can be delivered to this site after it learns of the crash.
			delete(st.chans, channel{fm.Failed, env.To})
		}
		st.route(env.To, st.sites[env.To].Deliver(env))
		return fmt.Sprintf("%v", env.Msg), nil
	case ActDrop:
		key := channel{a.From, a.To}
		q := st.chans[key]
		if len(q) == 0 || a.From < 0 || !st.crashed[a.From] {
			return "", fmt.Errorf("modelcheck: %v: nothing droppable", a)
		}
		// The dead sender's stream tears down here: the whole remaining queue
		// is lost, never a gap in the middle — the reliable sublayer delivers
		// each (from, to) stream in sequence order, so a receiver can only ever
		// observe a prefix of a dead sender's messages.
		delete(st.chans, key)
		return fmt.Sprintf("%d messages", len(q)), nil
	case ActRequest:
		i := a.Site
		if st.reqs[i] <= 0 || st.crashed[i] {
			return "", fmt.Errorf("modelcheck: %v: no request budget", a)
		}
		st.reqs[i]--
		if st.withdrawn != nil {
			st.withdrawn[i] = false // a fresh wave starts unwithdrawn
		}
		st.clearSettledRow(i)
		st.clearSettledCol(i)
		st.route(i, st.sites[i].Request())
		// Every waiting site whose wave had already settled when this
		// request was born is now "settled before issued" relative to it.
		n := len(st.sites)
		for j := 0; j < n; j++ {
			if mutex.SiteID(j) == i || st.crashed[j] {
				continue
			}
			if st.waveSettled(mutex.SiteID(j)) {
				st.settled[j*n+int(i)] = true
			}
		}
		return "", nil
	case ActExit:
		i := a.Site
		if st.inCS != i {
			return "", fmt.Errorf("modelcheck: %v: site not in CS", a)
		}
		st.inCS = -1
		st.exits++
		st.route(i, st.sites[i].Exit())
		return "", nil
	case ActCrash:
		v := a.Site
		if st.crashed[v] || st.crashesLeft <= 0 {
			return "", fmt.Errorf("modelcheck: %v: not crashable", a)
		}
		st.crashed[v] = true
		st.crashesLeft--
		if st.inCS == v {
			st.inCS = -1 // died inside the CS; §6 must re-grant
		}
		st.clearSettledRow(v)
		st.clearSettledCol(v)
		for k := range st.chans {
			if k.to == v {
				delete(st.chans, k) // in-flight messages to the victim are lost
			}
		}
		// Each survivor's local detector announces the crash independently:
		// one notification per survivor on its own channel.
		for w := range st.sites {
			if mutex.SiteID(w) == v || st.crashed[w] {
				continue
			}
			key := channel{detectorFrom(v), mutex.SiteID(w)}
			st.chans[key] = append(st.chans[key], mutex.Envelope{
				From: detectorFrom(v), To: mutex.SiteID(w), Msg: mutex.FailureMsg{Failed: v},
			})
		}
		return "", nil
	case ActApplyJoint:
		i := a.Site
		if st.member == nil || st.crashed[i] || st.member[i] != 0 {
			return "", fmt.Errorf("modelcheck: %v: not applicable", a)
		}
		st.member[i] = 1
		st.route(i, st.sites[i].(mutex.Reconfigurable).SetMembership(st.h.JointN(),
			[]mutex.SiteID(st.h.JointQuorum(i)),
			jointAvoid(st.h, i),
			uint64(membership.JointStage(st.h.Old.Epoch))))
		return "", nil
	case ActApplyFinal:
		i := a.Site
		if st.member == nil || st.crashed[i] || st.member[i] != 1 || int(i) >= st.h.New.N() {
			return "", fmt.Errorf("modelcheck: %v: not applicable", a)
		}
		st.member[i] = 2
		st.route(i, st.sites[i].(mutex.Reconfigurable).SetMembership(st.h.New.N(),
			[]mutex.SiteID(st.h.New.Coterie.Quorum(i)),
			stableAvoid(st.h.NewCons, st.h.New.N(), i),
			uint64(membership.StableStage(st.h.New.Epoch))))
		return "", nil
	default:
		return "", fmt.Errorf("modelcheck: unknown action %v", a)
	}
}

// enabled returns the protocol choices (deliver/request/exit) and the crash
// choices separately: a state with no protocol choice is terminal even when
// crashes remain — crashing a quiescent system explores nothing the deadlock
// and bound invariants should excuse.
func (ex *explorer) enabled(st *State) (core, crash []Action) {
	if st.inCS != -1 {
		core = append(core, Action{Kind: ActExit, Site: st.inCS})
	}
	for i, s := range st.sites {
		if !st.crashed[i] && st.reqs[i] > 0 && !s.Pending() && !s.InCS() {
			core = append(core, Action{Kind: ActRequest, Site: mutex.SiteID(i)})
		}
	}
	keys := make([]channel, 0, len(st.chans))
	for k, q := range st.chans {
		if len(q) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		core = append(core, Action{Kind: ActDeliver, From: k.from, To: k.to})
		if k.from >= 0 && st.crashed[k.from] {
			// The dead sender's retransmission half is gone: its stream can
			// tear down at any point, losing the rest of the channel.
			core = append(core, Action{Kind: ActDrop, From: k.from, To: k.to})
		}
	}
	if st.member != nil {
		// The handover's sweep steps. Joint applies interleave freely; final
		// applies wait for the settle barrier — every live site joint, no
		// swap still deferred behind a held CS — exactly the live
		// awaitSettled gate. They are core choices: a run is not terminal
		// until the switch has completed on every live site.
		barrier := true
		for i := range st.sites {
			if st.crashed[i] {
				continue
			}
			if st.member[i] == 0 || !st.sites[i].(mutex.Reconfigurable).MembershipSettled() {
				barrier = false
				break
			}
		}
		for i := range st.sites {
			if st.crashed[i] {
				continue
			}
			switch {
			case st.member[i] == 0:
				core = append(core, Action{Kind: ActApplyJoint, Site: mutex.SiteID(i)})
			case st.member[i] == 1 && barrier && i < st.h.New.N():
				core = append(core, Action{Kind: ActApplyFinal, Site: mutex.SiteID(i)})
			}
		}
	}
	if st.crashesLeft > 0 && st.workRemains() {
		for v := range st.sites {
			if ex.crashable[v] && !st.crashed[v] {
				crash = append(crash, Action{Kind: ActCrash, Site: mutex.SiteID(v)})
			}
		}
	}
	return core, crash
}

// workRemains reports whether any live site still has CS work outstanding;
// crash choices are only offered while it does.
func (st *State) workRemains() bool {
	for i, s := range st.sites {
		if st.crashed[i] {
			continue
		}
		if st.reqs[i] > 0 || s.Pending() || s.InCS() {
			return true
		}
	}
	return false
}

// canonical serializes the state deterministically for deduplication.
func (st *State) canonical(counters bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cs=%d reqs=%v left=%d|", st.inCS, st.reqs, st.crashesLeft)
	if counters {
		fmt.Fprintf(&b, "m=%d/%d|", st.sends, st.exits)
	}
	if st.member != nil {
		fmt.Fprintf(&b, "hs=%v wd=%v|", st.member, st.withdrawn)
	}
	var bits uint64
	for i, s := range st.settled {
		if s {
			bits |= 1 << uint(i)
		}
	}
	fmt.Fprintf(&b, "sb=%x|", bits)
	for i, s := range st.sites {
		if st.crashed[i] {
			fmt.Fprintf(&b, "S%d†", i)
			continue
		}
		b.WriteString(s.CanonicalState())
	}
	keys := make([]channel, 0, len(st.chans))
	for k := range st.chans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "|%d>%d:%v", k.from, k.to, st.chans[k])
	}
	return b.String()
}

// node is one frontier entry. After expansion the state is released; the
// parent chain keeps only the actions, which is all a counterexample needs.
type node struct {
	st     *State
	parent *node
	act    Action
	depth  int
}

func (n *node) trace() []Action {
	var rev []Action
	for cur := n; cur.parent != nil; cur = cur.parent {
		rev = append(rev, cur.act)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Run explores the configuration's full state space. A Violation stops the
// search and is returned inside the Result; Run itself errs only on
// configuration problems or a blown state budget.
func Run(cfg Config) (Result, error) {
	ex, err := newExplorer(cfg)
	if err != nil {
		return Result{}, err
	}
	init, err := ex.initial()
	if err != nil {
		return Result{}, err
	}
	res := Result{Complete: true}
	visited := map[string]struct{}{init.canonical(ex.counters): {}}
	frontier := []*node{{st: init, depth: 0}}
	for len(frontier) > 0 {
		var cur *node
		if cfg.DFS {
			cur = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		} else {
			cur = frontier[0]
			frontier = frontier[1:]
		}
		if cur.depth > res.Depth {
			res.Depth = cur.depth
		}
		coreActs, crashActs := ex.enabled(cur.st)
		if len(coreActs) == 0 {
			res.Terminals++
			for _, inv := range ex.invariants {
				if err := inv.Terminal(cur.st); err != nil {
					res.States = len(visited)
					res.Violation = newViolation(inv.Name(), err, cur.trace(), cur.st)
					return res, nil
				}
			}
		}
		if cfg.MaxDepth > 0 && cur.depth >= cfg.MaxDepth {
			res.Complete = false
			cur.st = nil
			continue
		}
		for _, a := range append(coreActs, crashActs...) {
			next := cur.st.clone()
			if _, err := next.apply(a); err != nil {
				return res, err
			}
			for _, inv := range ex.invariants {
				if ierr := inv.Step(cur.st, a, next); ierr != nil {
					child := &node{st: next, parent: cur, act: a, depth: cur.depth + 1}
					res.States = len(visited)
					res.Violation = newViolation(inv.Name(), ierr, child.trace(), next)
					return res, nil
				}
			}
			key := next.canonical(ex.counters)
			if _, seen := visited[key]; seen {
				continue
			}
			visited[key] = struct{}{}
			if cfg.MaxStates > 0 && len(visited) > cfg.MaxStates {
				res.States = len(visited)
				return res, fmt.Errorf("%w: more than %d states", ErrStateBudget, cfg.MaxStates)
			}
			frontier = append(frontier, &node{st: next, parent: cur, act: a, depth: cur.depth + 1})
		}
		cur.st = nil
	}
	res.States = len(visited)
	return res, nil
}
