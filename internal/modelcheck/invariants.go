package modelcheck

import (
	"fmt"

	"dqmx/internal/mutex"
)

// Invariant is one pluggable property of the explored state space, mirroring
// the chaos checker's conformance rules. Step is called once per explored
// transition with the unmutated pre-state, the chosen action, and the
// resulting post-state; Terminal is called once per quiescent state (no
// deliver, request, or exit choice enabled). The first non-nil error stops
// the search and becomes the Violation.
type Invariant interface {
	Name() string
	Step(pre *State, act Action, post *State) error
	Terminal(st *State) error
}

// StepFunc checks one transition; TerminalFunc checks one quiescent state.
type (
	StepFunc     func(pre *State, act Action, post *State) error
	TerminalFunc func(st *State) error
)

// NewInvariant builds an invariant from plain functions; either may be nil.
func NewInvariant(name string, step StepFunc, terminal TerminalFunc) Invariant {
	return funcInvariant{name: name, step: step, terminal: terminal}
}

type funcInvariant struct {
	name     string
	step     StepFunc
	terminal TerminalFunc
}

func (f funcInvariant) Name() string { return f.name }

func (f funcInvariant) Step(pre *State, act Action, post *State) error {
	if f.step == nil {
		return nil
	}
	return f.step(pre, act, post)
}

func (f funcInvariant) Terminal(st *State) error {
	if f.terminal == nil {
		return nil
	}
	return f.terminal(st)
}

// Defaults returns the standard invariant set: mutual exclusion, settled-wave
// timestamp order, and terminal deadlock freedom. The message-bound invariant
// is added separately via Config.Bound because it changes the canonical state
// (see Config).
func Defaults() []Invariant {
	return []Invariant{SafetyInvariant(), OrderInvariant(), DeadlockInvariant()}
}

// SafetyInvariant asserts the mutual exclusion property: no transition may
// produce a second simultaneous CS holder.
func SafetyInvariant() Invariant {
	return NewInvariant("safety", func(pre *State, act Action, post *State) error {
		if d := post.DoubleEntry(); d != nil {
			return fmt.Errorf("site %d entered the CS while site %d held it", d[1], d[0])
		}
		return nil
	}, nil)
}

// OrderInvariant asserts the chaos checker's timestamp-order rule inside the
// model: when a site enters the CS, no waiting request with a smaller
// timestamp whose wave had settled before the entering request was issued may
// be bypassed. Like the chaos sweep's crash schedules, runs are exempt once a
// site has crashed — §6 recovery re-queues requests and the order guarantee
// is then best-effort.
func OrderInvariant() Invariant {
	return NewInvariant("order", func(pre *State, act Action, post *State) error {
		i := post.Entered()
		if i == -1 || pre.Faulty() {
			return nil
		}
		tsI, ok := post.SiteAt(i).RequestTimestamp()
		if !ok {
			return nil
		}
		for j := 0; j < pre.N(); j++ {
			sj := mutex.SiteID(j)
			if sj == i || pre.Crashed(sj) || !pre.SiteAt(sj).Pending() {
				continue
			}
			if !pre.SettledBefore(sj, i) {
				continue
			}
			tsJ, ok := pre.SiteAt(sj).RequestTimestamp()
			if !ok {
				continue
			}
			if tsJ.Less(tsI) {
				return fmt.Errorf("site %d entered with %v while site %d's settled older request %v waits", i, tsI, sj, tsJ)
			}
		}
		return nil
	}, nil)
}

// DeadlockInvariant asserts terminal liveness: in a quiescent state every
// live site has issued and completed its whole CS budget. A crashed site's
// unfinished work is excused.
func DeadlockInvariant() Invariant {
	return NewInvariant("deadlock", nil, func(st *State) error {
		for i := 0; i < st.N(); i++ {
			si := mutex.SiteID(i)
			if st.Crashed(si) {
				continue
			}
			if st.Remaining(si) > 0 || st.SiteAt(si).Pending() || st.SiteAt(si).InCS() {
				return fmt.Errorf("site %d has incomplete work in a terminal state", i)
			}
		}
		return nil
	})
}

// BoundInvariant asserts the paper's per-CS message envelope on fault-free
// terminal states: total network protocol messages divided by completed CS
// executions must land in [Lo, Hi] — 3(K−1)..6(K−1) for the coterie in use
// (BoundsFor). Crashed runs are exempt, as in the chaos checker.
func BoundInvariant(b Bound) Invariant {
	return NewInvariant("bound", nil, func(st *State) error {
		if st.Faulty() || st.Exits() == 0 {
			return nil
		}
		perCS := float64(st.Sends()) / float64(st.Exits())
		if perCS < b.Lo || perCS > b.Hi {
			return fmt.Errorf("%.2f messages per CS over %d executions, outside [%.0f, %.0f]",
				perCS, st.Exits(), b.Lo, b.Hi)
		}
		return nil
	})
}
