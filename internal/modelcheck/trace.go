package modelcheck

import (
	"fmt"
	"sort"
	"strings"

	"dqmx/internal/mutex"
)

// ActionKind enumerates the explorer's nondeterministic choices.
type ActionKind int8

const (
	// ActDeliver delivers the head of the From→To channel.
	ActDeliver ActionKind = iota + 1
	// ActRequest lets Site issue its next CS request.
	ActRequest
	// ActExit lets Site (the current holder) leave the CS.
	ActExit
	// ActCrash fails Site through the §6 path.
	ActCrash
	// ActDrop severs the From→To channel, losing every remaining in-flight
	// message on it. Only enabled when From has crashed: the dead sender's
	// half of the reliable-delivery sublayer is gone, so its stream delivers
	// some prefix and loses the suffix — the explorer branches over every cut
	// point by interleaving deliveries with one final drop.
	ActDrop
	// ActApplyJoint installs the handover's joint req_set on Site — one step
	// of the joint sweep, interleaving freely with protocol traffic (only in
	// Config.Handover runs).
	ActApplyJoint
	// ActApplyFinal installs the new configuration's req_set on Site. Gated
	// on the settle barrier: every live site must be joint and settled first.
	ActApplyFinal
)

// Action is one choice of a run: a counterexample trace is the exact
// sequence of Actions that reaches the violating state from the initial one.
type Action struct {
	Kind     ActionKind
	From, To mutex.SiteID // deliver: the channel
	Site     mutex.SiteID // request / exit / crash: the acting site
}

func (a Action) String() string {
	switch a.Kind {
	case ActDeliver:
		return fmt.Sprintf("deliver %d>%d", a.From, a.To)
	case ActRequest:
		return fmt.Sprintf("request %d", a.Site)
	case ActExit:
		return fmt.Sprintf("exit %d", a.Site)
	case ActCrash:
		return fmt.Sprintf("crash %d", a.Site)
	case ActDrop:
		return fmt.Sprintf("drop %d>%d", a.From, a.To)
	case ActApplyJoint:
		return fmt.Sprintf("apply-joint %d", a.Site)
	case ActApplyFinal:
		return fmt.Sprintf("apply-final %d", a.Site)
	default:
		return fmt.Sprintf("action(%d)", a.Kind)
	}
}

// Violation is one invariant breach: which invariant fired, why, the minimal
// choice sequence that reproduces it (minimal in the BFS search order), and
// a per-site dump of the violating state.
type Violation struct {
	Invariant string
	Msg       string
	Trace     []Action
	Dump      string
}

func newViolation(invariant string, err error, trace []Action, st *State) *Violation {
	return &Violation{Invariant: invariant, Msg: err.Error(), Trace: trace, Dump: dumpState(st)}
}

// String renders the violation as a replayable report.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant %q violated: %s\n", v.Invariant, v.Msg)
	fmt.Fprintf(&b, "counterexample (%d choices):\n", len(v.Trace))
	for i, a := range v.Trace {
		fmt.Fprintf(&b, "  %3d. %v\n", i+1, a)
	}
	b.WriteString("state:\n")
	b.WriteString(v.Dump)
	return b.String()
}

// dumpState renders the whole system state: holder, per-site budgets and
// machine dumps, and every in-flight message.
func dumpState(st *State) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  holder=%d crashesLeft=%d sends=%d exits=%d\n", st.inCS, st.crashesLeft, st.sends, st.exits)
	if st.member != nil {
		fmt.Fprintf(&b, "  handover: member=%v withdrawn=%v\n", st.member, st.withdrawn)
	}
	for i, s := range st.sites {
		mark := " "
		if st.crashed[i] {
			mark = "†"
		}
		fmt.Fprintf(&b, "  %s[reqs=%d] %s\n", mark, st.reqs[i], s.DebugString())
	}
	keys := make([]channel, 0, len(st.chans))
	for k := range st.chans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		for _, env := range st.chans[k] {
			fmt.Fprintf(&b, "  wire %d>%d: %v\n", k.from, k.to, env.Msg)
		}
	}
	return b.String()
}

// Replay re-executes a recorded choice sequence against a fresh initial
// state, running the same invariants, and returns the violation it
// reproduces (nil when the trace runs clean), a per-step log, and an error
// when the trace does not fit the configuration. Terminal invariants are
// checked when the final state is quiescent.
func Replay(cfg Config, trace []Action) (*Violation, []string, error) {
	ex, err := newExplorer(cfg)
	if err != nil {
		return nil, nil, err
	}
	st, err := ex.initial()
	if err != nil {
		return nil, nil, err
	}
	log := make([]string, 0, len(trace))
	for i, a := range trace {
		pre := st.clone()
		detail, err := st.apply(a)
		if err != nil {
			return nil, log, fmt.Errorf("step %d: %w", i+1, err)
		}
		line := fmt.Sprintf("%3d. %v", i+1, a)
		if detail != "" {
			line += " " + detail
		}
		if st.entered != -1 {
			line += fmt.Sprintf(" → site %d enters CS", st.entered)
		}
		log = append(log, line)
		for _, inv := range ex.invariants {
			if ierr := inv.Step(pre, a, st); ierr != nil {
				return newViolation(inv.Name(), ierr, trace[:i+1], st), log, nil
			}
		}
	}
	if coreActs, _ := ex.enabled(st); len(coreActs) == 0 {
		for _, inv := range ex.invariants {
			if ierr := inv.Terminal(st); ierr != nil {
				return newViolation(inv.Name(), ierr, trace, st), log, nil
			}
		}
	}
	return nil, log, nil
}
