// Package timestamp implements Lamport logical clocks and the totally
// ordered request timestamps used by all mutual exclusion algorithms in this
// repository.
//
// A request timestamp is a pair (sequence number, site number). Following
// Lamport's scheme, the sequence number assigned to a new request is greater
// than that of any request sent, received, or observed at that site. Ties on
// the sequence number are broken by the site number, so the order on
// timestamps is a strict total order: the timestamp with the smaller sequence
// number has higher priority, and between equal sequence numbers the smaller
// site number has higher priority.
package timestamp

import (
	"fmt"
	"math"
)

// SiteID identifies a site (a process and the computer it executes on).
// Sites are numbered 0..N-1.
type SiteID int

// None is the SiteID used when no site is meant (for example the second
// component of a release message that did not transfer a permission).
const None SiteID = -1

// Timestamp is a Lamport request timestamp (sequence number, site number).
// The zero value is not a valid request timestamp; use Max for the "no
// request" sentinel that loses to every real request.
type Timestamp struct {
	Seq  uint64
	Site SiteID
}

// Max is the sentinel timestamp (max, max) from the paper: it has lower
// priority than every real request timestamp and marks an unlocked arbiter.
var Max = Timestamp{Seq: math.MaxUint64, Site: SiteID(math.MaxInt64)}

// IsMax reports whether t is the (max, max) sentinel.
func (t Timestamp) IsMax() bool { return t == Max }

// Less reports whether t has strictly higher priority than u. Smaller
// sequence numbers win; ties are broken by smaller site numbers.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.Site < u.Site
}

// Compare returns -1 if t has higher priority than u, +1 if lower, and 0 if
// the timestamps are identical.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t.Less(u):
		return -1
	case u.Less(t):
		return 1
	default:
		return 0
	}
}

// String renders the timestamp as "(seq,site)" with "(max,max)" for the
// sentinel.
func (t Timestamp) String() string {
	if t.IsMax() {
		return "(max,max)"
	}
	return fmt.Sprintf("(%d,%d)", t.Seq, t.Site)
}

// Clock is a Lamport logical clock for a single site. The zero value is a
// valid clock starting at sequence number 0. Clock is not safe for concurrent
// use; each site owns exactly one clock and drives it from a single
// goroutine (or from the single-threaded simulator).
type Clock struct {
	site SiteID
	seq  uint64
}

// NewClock returns a clock owned by the given site.
func NewClock(site SiteID) *Clock {
	return &Clock{site: site}
}

// Site returns the owning site.
func (c *Clock) Site() SiteID { return c.site }

// Now returns the current sequence number without advancing the clock.
func (c *Clock) Now() uint64 { return c.seq }

// Tick advances the clock for a local event and returns a fresh timestamp
// greater than every timestamp previously seen by this site.
func (c *Clock) Tick() Timestamp {
	c.seq++
	return Timestamp{Seq: c.seq, Site: c.site}
}

// Witness folds an observed timestamp into the clock so that subsequent
// Ticks dominate it. Witnessing the Max sentinel is a no-op.
func (c *Clock) Witness(t Timestamp) {
	if t.IsMax() {
		return
	}
	if t.Seq > c.seq {
		c.seq = t.Seq
	}
}
