package timestamp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLessPriorityOrder(t *testing.T) {
	tests := []struct {
		name string
		a, b Timestamp
		want bool
	}{
		{"smaller seq wins", Timestamp{1, 5}, Timestamp{2, 0}, true},
		{"larger seq loses", Timestamp{3, 0}, Timestamp{2, 9}, false},
		{"tie broken by site", Timestamp{2, 1}, Timestamp{2, 2}, true},
		{"tie broken by site reversed", Timestamp{2, 2}, Timestamp{2, 1}, false},
		{"equal timestamps", Timestamp{2, 2}, Timestamp{2, 2}, false},
		{"real beats max", Timestamp{math.MaxUint64 - 1, 0}, Max, true},
		{"max loses to real", Max, Timestamp{1, 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("Less(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompare(t *testing.T) {
	a := Timestamp{1, 1}
	b := Timestamp{1, 2}
	if got := a.Compare(b); got != -1 {
		t.Errorf("Compare = %d, want -1", got)
	}
	if got := b.Compare(a); got != 1 {
		t.Errorf("Compare = %d, want 1", got)
	}
	if got := a.Compare(a); got != 0 {
		t.Errorf("Compare = %d, want 0", got)
	}
}

func TestMaxSentinel(t *testing.T) {
	if !Max.IsMax() {
		t.Fatal("Max.IsMax() = false")
	}
	if (Timestamp{1, 1}).IsMax() {
		t.Fatal("real timestamp reported as max")
	}
	if Max.String() != "(max,max)" {
		t.Errorf("Max.String() = %q", Max.String())
	}
	if got := (Timestamp{3, 4}).String(); got != "(3,4)" {
		t.Errorf("String() = %q, want (3,4)", got)
	}
}

func TestClockTickMonotone(t *testing.T) {
	c := NewClock(7)
	if c.Site() != 7 {
		t.Fatalf("Site() = %d, want 7", c.Site())
	}
	prev := Timestamp{0, 7}
	for i := 0; i < 100; i++ {
		ts := c.Tick()
		if ts.Site != 7 {
			t.Fatalf("Tick produced site %d, want 7", ts.Site)
		}
		if !prev.Less(ts) && i > 0 {
			t.Fatalf("clock not monotone: %v then %v", prev, ts)
		}
		prev = ts
	}
}

func TestClockWitness(t *testing.T) {
	c := NewClock(1)
	c.Witness(Timestamp{41, 9})
	ts := c.Tick()
	if ts.Seq != 42 {
		t.Errorf("after witnessing seq 41, Tick seq = %d, want 42", ts.Seq)
	}
	// Witnessing an older timestamp must not regress the clock.
	c.Witness(Timestamp{5, 3})
	ts = c.Tick()
	if ts.Seq != 43 {
		t.Errorf("after witnessing old ts, Tick seq = %d, want 43", ts.Seq)
	}
	// Witnessing the Max sentinel is a no-op.
	c.Witness(Max)
	ts = c.Tick()
	if ts.Seq != 44 {
		t.Errorf("after witnessing Max, Tick seq = %d, want 44", ts.Seq)
	}
	if c.Now() != 44 {
		t.Errorf("Now() = %d, want 44", c.Now())
	}
}

// TestLessIsStrictTotalOrder property-checks irreflexivity, asymmetry,
// transitivity and totality of the priority order.
func TestLessIsStrictTotalOrder(t *testing.T) {
	mk := func(seq uint64, site int16) Timestamp {
		return Timestamp{Seq: seq % 8, Site: SiteID(site % 8)}
	}
	irreflexive := func(s uint64, n int16) bool {
		a := mk(s, n)
		return !a.Less(a)
	}
	asymmetric := func(s1 uint64, n1 int16, s2 uint64, n2 int16) bool {
		a, b := mk(s1, n1), mk(s2, n2)
		return !(a.Less(b) && b.Less(a))
	}
	transitive := func(s1 uint64, n1 int16, s2 uint64, n2 int16, s3 uint64, n3 int16) bool {
		a, b, c := mk(s1, n1), mk(s2, n2), mk(s3, n3)
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	total := func(s1 uint64, n1 int16, s2 uint64, n2 int16) bool {
		a, b := mk(s1, n1), mk(s2, n2)
		return a.Less(b) || b.Less(a) || a == b
	}
	cfg := &quick.Config{MaxCount: 2000}
	for name, fn := range map[string]any{
		"irreflexive": irreflexive,
		"asymmetric":  asymmetric,
		"transitive":  transitive,
		"total":       total,
	} {
		if err := quick.Check(fn, cfg); err != nil {
			t.Errorf("%s violated: %v", name, err)
		}
	}
}
